// SlabPool free-list arena and its use under StageBuffer: recycled
// storage must be reused (no fresh heap allocations in steady state,
// asserted through the allocation-counting hook), skipped consumers must
// retire their producers' slabs, and recycled slabs must never change
// the stitched bits across buffer generations.

#include "pipeline/slab_pool.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/dependency.hpp"
#include "pipeline/stage_buffer.hpp"
#include "runtime/tiler.hpp"
#include "stencil/program.hpp"

namespace nup::pipeline {
namespace {

// ---- SlabPool ----------------------------------------------------------

TEST(SlabPool, TakeGiveRecyclesStorage) {
  SlabPool pool;
  std::vector<double> a = pool.take(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(pool.stats().allocated, 1);
  EXPECT_EQ(pool.stats().outstanding, 1);

  pool.give(std::move(a));
  EXPECT_EQ(pool.stats().outstanding, 0);

  // A smaller request reuses the returned storage instead of allocating.
  std::vector<double> b = pool.take(80);
  EXPECT_EQ(b.size(), 80u);
  EXPECT_EQ(pool.stats().allocated, 1);
  EXPECT_EQ(pool.stats().reused, 1);

  // A request nothing free can hold allocates fresh.
  std::vector<double> c = pool.take(200);
  EXPECT_EQ(pool.stats().allocated, 2);
  pool.give(std::move(b));
  pool.give(std::move(c));
}

TEST(SlabPool, TakePrefersTheSmallestFittingSlab) {
  SlabPool pool;
  std::vector<double> small = pool.take(100);
  std::vector<double> large = pool.take(1000);
  pool.give(std::move(small));
  pool.give(std::move(large));

  // Best fit: the 100-capacity vector serves the 50-element request, so
  // the large slab stays available for large requests.
  std::vector<double> got = pool.take(50);
  EXPECT_LT(got.capacity(), 1000u);
  std::vector<double> big = pool.take(900);
  EXPECT_EQ(pool.stats().allocated, 2) << "large request should reuse";
}

TEST(SlabPool, LeaseRecyclesWhenTheLastHolderDrops) {
  SlabPool pool;
  std::shared_ptr<std::vector<double>> a = pool.lease(50);
  ASSERT_EQ(a->size(), 50u);
  (*a)[0] = 7.5;
  const std::vector<double>* raw = a.get();
  EXPECT_EQ(pool.stats().allocated, 1);

  // While held, a second lease cannot reuse it.
  std::shared_ptr<std::vector<double>> b = pool.lease(50);
  EXPECT_NE(b.get(), raw);
  EXPECT_EQ(pool.stats().allocated, 2);

  // Dropping the holder returns it to circulation -- same storage, no new
  // control block, zero-filled again.
  a.reset();
  std::shared_ptr<std::vector<double>> c = pool.lease(40);
  EXPECT_EQ(c.get(), raw);
  EXPECT_EQ(c->size(), 40u);
  EXPECT_EQ((*c)[0], 0.0) << "leases must hand out zero-filled buffers";
  EXPECT_EQ(pool.stats().allocated, 2);
  EXPECT_EQ(pool.stats().reused, 1);
}

TEST(SlabPool, StatsCountOutstandingLeases) {
  SlabPool pool;
  std::shared_ptr<std::vector<double>> a = pool.lease(10);
  std::vector<double> t = pool.take(10);
  EXPECT_EQ(pool.stats().outstanding, 2);
  a.reset();
  pool.give(std::move(t));
  EXPECT_EQ(pool.stats().outstanding, 0);
}

TEST(SlabPool, AllocHookFiresOnlyOnFreshAllocations) {
  SlabPool pool;
  int fresh = 0;
  pool.set_alloc_hook([&fresh](std::size_t) { ++fresh; });

  std::vector<double> a = pool.take(64);
  EXPECT_EQ(fresh, 1);
  pool.give(std::move(a));
  std::vector<double> b = pool.take(64);
  EXPECT_EQ(fresh, 1) << "reuse must not fire the hook";
  pool.give(std::move(b));

  std::shared_ptr<std::vector<double>> l = pool.lease(32);
  EXPECT_EQ(fresh, 2);
  l.reset();
  l = pool.lease(32);
  EXPECT_EQ(fresh, 2) << "lease reuse must not fire the hook";
}

TEST(SlabPool, BindMetricsMirrorsTallies) {
  obs::Registry registry;
  SlabPool pool;
  pool.bind_metrics(&registry.counter("p.slab_allocated"),
                    &registry.counter("p.slab_recycled"));
  std::vector<double> a = pool.take(8);
  pool.give(std::move(a));
  std::vector<double> b = pool.take(8);
  pool.give(std::move(b));
  EXPECT_EQ(registry.counter("p.slab_allocated").value(), 1);
  EXPECT_EQ(registry.counter("p.slab_recycled").value(), 1);
}

// ---- StageBuffer over a shared pool ------------------------------------

stencil::StencilProgram smoother(const std::string& name, std::int64_t lo,
                                 std::int64_t rows, std::int64_t cols) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  return p;
}

// Two radius-1 smoothers in 2-row bands, the slab-pool edge fixture: a
// producer frame is admitted tile by tile and consumed via stitch().
struct EdgeFixture {
  EdgeFixture()
      : s0(smoother("S0", 1, 14, 10)), s1(smoother("S1", 2, 14, 10)) {
    runtime::TilerOptions topts;
    topts.tile_shape = {2, 0};
    p0 = std::make_shared<const runtime::TilePlan>(
        runtime::plan_tiles(s0, topts));
    p1 = std::make_shared<const runtime::TilePlan>(
        runtime::plan_tiles(s1, topts));
    map = std::make_shared<const EdgeTileMap>(
        map_tile_dependencies(*p0, *p1, 0));
    // A deterministic producer frame: value = lex rank.
    frame.resize(static_cast<std::size_t>(p0->total_outputs));
    for (std::size_t k = 0; k < frame.size(); ++k) {
      frame[k] = static_cast<double>(k) * 0.5;
    }
  }
  stencil::StencilProgram s0, s1;
  std::shared_ptr<const runtime::TilePlan> p0, p1;
  std::shared_ptr<const EdgeTileMap> map;
  std::vector<double> frame;
};

TEST(StageBufferPool, SlabsRecycleAcrossBufferGenerations) {
  EdgeFixture fx;
  obs::Registry registry;
  auto pool = std::make_shared<SlabPool>();

  // Generation 0 warms the pool; afterwards no admit/stitch/retire cycle
  // may allocate, and the stitched bits never change.
  std::vector<std::vector<double>> reference;
  bool armed = false;
  pool->set_alloc_hook([&armed](std::size_t n) {
    if (armed) {
      FAIL() << "steady-state allocation of " << n << " elements";
    }
  });
  for (int generation = 0; generation < 4; ++generation) {
    StageBuffer buffer(fx.p0, fx.p1, fx.map, 0, registry, "gen", pool);
    for (std::size_t p = 0; p < fx.p0->tiles.size(); ++p) {
      buffer.admit(p, fx.frame.data());
    }
    for (std::size_t c = 0; c < fx.p1->tiles.size(); ++c) {
      Slice slice = buffer.stitch(c);
      if (generation == 0) {
        reference.push_back(*slice.data);
      } else {
        EXPECT_EQ(*slice.data, reference[c])
            << "generation " << generation << " consumer " << c
            << " stitched different bits from recycled storage";
      }
    }
    EXPECT_EQ(buffer.occupancy().tiles, 0) << "slabs left resident";
    if (generation == 0) armed = true;  // pool is warm: no more allocs
  }
  EXPECT_EQ(pool->stats().outstanding, 0);
  EXPECT_GT(pool->stats().reused, 0);
}

TEST(StageBufferPool, SkippedConsumersRetireTheirProducerSlabs) {
  EdgeFixture fx;
  obs::Registry registry;
  auto pool = std::make_shared<SlabPool>();
  StageBuffer buffer(fx.p0, fx.p1, fx.map, 0, registry, "skip", pool);

  for (std::size_t p = 0; p < fx.p0->tiles.size(); ++p) {
    buffer.admit(p, fx.frame.data());
  }
  const std::int64_t resident = buffer.occupancy().tiles;
  ASSERT_GT(resident, 0);

  // Abort path: every consumer tile is dropped without stitching. All
  // slabs must retire back into the pool, not linger until teardown.
  for (std::size_t c = 0; c < fx.p1->tiles.size(); ++c) {
    buffer.release_consumer(c);
  }
  EXPECT_EQ(buffer.occupancy().tiles, 0);
  EXPECT_EQ(buffer.occupancy().elements, 0);
  EXPECT_EQ(buffer.occupancy().retired, resident);
  EXPECT_EQ(pool->stats().outstanding, 0);
}

TEST(StageBufferPool, MixedStitchAndSkipRetiresEverything) {
  EdgeFixture fx;
  obs::Registry registry;
  auto pool = std::make_shared<SlabPool>();
  StageBuffer buffer(fx.p0, fx.p1, fx.map, 0, registry, "mixed", pool);

  for (std::size_t p = 0; p < fx.p0->tiles.size(); ++p) {
    buffer.admit(p, fx.frame.data());
  }
  // Odd consumers are served, even consumers skipped (a frame cancelled
  // midway): both paths must decrement the same pending counts.
  for (std::size_t c = 0; c < fx.p1->tiles.size(); ++c) {
    if (c % 2 == 1) {
      buffer.stitch(c);
    } else {
      buffer.release_consumer(c);
    }
  }
  EXPECT_EQ(buffer.occupancy().tiles, 0);
  EXPECT_EQ(pool->stats().outstanding, 0);
}

TEST(StageBufferPool, SkipBeforeAdmitDropsTheLateSlab) {
  EdgeFixture fx;
  obs::Registry registry;
  auto pool = std::make_shared<SlabPool>();
  StageBuffer buffer(fx.p0, fx.p1, fx.map, 0, registry, "late", pool);

  // All consumers are dropped before any producer resolves (an abort that
  // wins the race): a late admit must hand its slab straight back.
  for (std::size_t c = 0; c < fx.p1->tiles.size(); ++c) {
    buffer.release_consumer(c);
  }
  for (std::size_t p = 0; p < fx.p0->tiles.size(); ++p) {
    buffer.admit(p, fx.frame.data());
  }
  EXPECT_EQ(buffer.occupancy().tiles, 0);
  EXPECT_EQ(pool->stats().outstanding, 0);
}

TEST(StageBufferPool, PrivatePoolWhenNoneIsShared) {
  EdgeFixture fx;
  obs::Registry registry;
  // Null pool: the buffer still works end to end over its private arena
  // (single-frame and test uses).
  StageBuffer buffer(fx.p0, fx.p1, fx.map, 0, registry, "solo");
  for (std::size_t p = 0; p < fx.p0->tiles.size(); ++p) {
    buffer.admit(p, fx.frame.data());
  }
  for (std::size_t c = 0; c < fx.p1->tiles.size(); ++c) {
    Slice slice = buffer.stitch(c);
    EXPECT_NE(slice.data, nullptr);
  }
  EXPECT_EQ(buffer.occupancy().tiles, 0);
}

// ---- per-node arenas ---------------------------------------------------

TEST(SlabPoolArenas, ArenasRecycleIndependently) {
  SlabPool pool(2);
  EXPECT_EQ(pool.arena_count(), 2u);
  std::vector<double> a = pool.take(100, 0);
  pool.give(std::move(a), 0);

  // Arena 1 cannot see arena 0's free list: this request allocates fresh.
  std::vector<double> b = pool.take(100, 1);
  EXPECT_EQ(pool.stats().allocated, 2);
  EXPECT_EQ(pool.stats().reused, 0);
  pool.give(std::move(b), 1);

  // Each arena reuses its own storage.
  std::vector<double> c = pool.take(80, 0);
  std::vector<double> d = pool.take(80, 1);
  EXPECT_EQ(pool.stats().allocated, 2);
  EXPECT_EQ(pool.stats().reused, 2);
  pool.give(std::move(c), 0);
  pool.give(std::move(d), 1);
}

TEST(SlabPoolArenas, OutOfRangeArenaClampsInsteadOfCrashing) {
  SlabPool pool(2);
  std::vector<double> a = pool.take(32, 99);  // clamps to the last arena
  pool.give(std::move(a), 99);
  std::vector<double> b = pool.take(32, 1);
  EXPECT_EQ(pool.stats().reused, 1) << "clamped give must land in arena 1";
  pool.give(std::move(b), 1);
  // The default single-arena pool clamps everything to arena 0.
  SlabPool single;
  std::vector<double> c = single.take(16, 5);
  single.give(std::move(c), 7);
  std::vector<double> d = single.take(16, 0);
  EXPECT_EQ(single.stats().reused, 1);
  single.give(std::move(d));
}

TEST(SlabPoolArenas, LiveSlabsCountEveryBufferAlive) {
  SlabPool pool(2);
  EXPECT_EQ(pool.live_slabs(), 0);
  std::vector<double> t = pool.take(10, 0);          // outstanding take
  std::shared_ptr<std::vector<double>> l = pool.lease(20, 1);  // leased
  EXPECT_EQ(pool.live_slabs(), 2);
  pool.give(std::move(t), 0);  // now a free-list entry: still alive
  EXPECT_EQ(pool.live_slabs(), 2);
  l.reset();  // recyclable lease entry: still resident in the pool
  EXPECT_EQ(pool.live_slabs(), 2);
}

TEST(SlabPoolArenas, ResidentBytesTrackPoolHeldCapacity) {
  SlabPool pool(2);
  EXPECT_EQ(pool.bytes_resident(), 0);

  // An outstanding take() is the caller's memory, not the pool's.
  std::vector<double> t = pool.take(100, 0);
  EXPECT_EQ(pool.bytes_resident(), 0);
  const std::int64_t cap100 =
      static_cast<std::int64_t>(t.capacity() * sizeof(double));
  pool.give(std::move(t), 0);
  EXPECT_EQ(pool.bytes_resident(), cap100);

  // Leases are pool-held for their whole life (the pool keeps a ref).
  std::shared_ptr<std::vector<double>> l = pool.lease(50, 1);
  const std::int64_t cap50 =
      static_cast<std::int64_t>(l->capacity() * sizeof(double));
  EXPECT_EQ(pool.bytes_resident(), cap100 + cap50);
  l.reset();
  EXPECT_EQ(pool.bytes_resident(), cap100 + cap50);

  // Re-taking moves the capacity back to the caller.
  std::vector<double> again = pool.take(90, 0);
  EXPECT_EQ(pool.bytes_resident(), cap50);
  pool.give(std::move(again), 0);
  EXPECT_EQ(pool.bytes_resident(), cap100 + cap50);
}

TEST(SlabPoolArenas, ResidentGaugeMirrorsBytesResident) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("pool.test.resident_bytes");
  SlabPool pool(2);
  pool.bind_resident_gauge(&gauge);

  std::vector<double> t = pool.take(64, 1);
  pool.give(std::move(t), 1);
  EXPECT_EQ(gauge.value(), pool.bytes_resident());
  EXPECT_GT(gauge.value(), 0);

  std::shared_ptr<std::vector<double>> l = pool.lease(32, 0);
  EXPECT_EQ(gauge.value(), pool.bytes_resident());
  std::vector<double> again = pool.take(64, 1);
  EXPECT_EQ(gauge.value(), pool.bytes_resident());
  pool.give(std::move(again), 1);
  l.reset();
  EXPECT_EQ(gauge.value(), pool.bytes_resident());
}

}  // namespace
}  // namespace nup::pipeline
