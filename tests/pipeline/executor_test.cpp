// PipelineExecutor end-to-end: tile-granular pipelined execution of stage
// chains must be bit-identical to (a) sequential stage-at-a-time golden
// execution and (b) a monolithically fused program, across gallery chains,
// fifty random fusible pairs, degenerate tile shapes, and the barrier
// baseline; cancellation and shutdown must never hang; stage buffers must
// retire slabs instead of holding whole frames.

#include "pipeline/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/stage_graph.hpp"
#include "stencil/fuse.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"
#include "testing/stencil_gen.hpp"

namespace nup::pipeline {
namespace {

using std::chrono::milliseconds;

stencil::StencilProgram smoother(const std::string& name, std::int64_t lo,
                                 std::int64_t rows, std::int64_t cols) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  // Unequal weights: any gather-order or stitching mistake changes bits.
  p.set_kernel(stencil::make_weighted_sum({0.05, 0.2, 0.5, 0.15, 0.1}));
  return p;
}

// Random fusible stage pairs come from the shared generator (legacy
// recipe: window containment by construction, random weighted-sum
// kernels installed via set_weighted_sum).
using ::nup::testing::random_stage_pair;

// Sequential stage-at-a-time reference: stage 0 is golden on synthetic
// data, each later stage gathers from its predecessor's dense output
// (addressed by lex rank of the producer domain) in source reference
// order -- the same gather order the engine and fuse() use.
std::vector<double> reference_chain(
    const std::vector<stencil::StencilProgram>& stages,
    std::uint64_t seed) {
  std::vector<double> prev;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const stencil::StencilProgram& p = stages[s];
    if (s == 0) {
      prev = stencil::run_golden(p, seed).outputs;
      continue;
    }
    const poly::Domain& producer = stages[s - 1].iteration();
    std::vector<double> out;
    std::vector<double> gathered;
    p.iteration().for_each([&](const poly::IntVec& i) {
      gathered.clear();
      for (const stencil::InputArray& in : p.inputs()) {
        for (const stencil::ArrayReference& ref : in.refs) {
          poly::IntVec h = i;
          for (std::size_t d = 0; d < h.size(); ++d) {
            h[d] += ref.offset[d];
          }
          gathered.push_back(
              prev[static_cast<std::size_t>(producer.lex_rank(h))]);
        }
      }
      out.push_back(p.kernel()(gathered));
    });
    prev = std::move(out);
  }
  return prev;
}

void expect_pipeline_matches(
    const std::vector<stencil::StencilProgram>& stages,
    const PipelineResult& result, std::uint64_t seed) {
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.stages.size(), stages.size());

  // (a) bit-identical to the sequential stage-at-a-time reference.
  const std::vector<double> reference = reference_chain(stages, seed);
  EXPECT_EQ(result.stages.back().outputs, reference)
      << stages.back().name() << " seed " << seed;

  // (b) bit-identical to the monolithically fused program.
  const stencil::StencilProgram fused = stencil::fuse_chain(stages);
  EXPECT_EQ(result.stages.back().outputs,
            stencil::run_golden(fused, seed).outputs)
      << "fused " << fused.name() << " seed " << seed;
}

// ---- bit-identical chains ----------------------------------------------

TEST(PipelineExecutor, GalleryTwoStageChainMatchesSequentialAndFused) {
  std::vector<stencil::StencilProgram> stages = {
      stencil::denoise_2d(20, 24), smoother("INNER", 2, 20, 24)};
  PipelineOptions options;
  options.threads_per_stage = 2;
  options.tile_shape = {3, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);
  for (const std::uint64_t seed : {7ull, 4242ull}) {
    expect_pipeline_matches(stages, executor.submit(seed).wait(), seed);
  }
}

TEST(PipelineExecutor, GalleryThreeStageChainMatchesSequentialAndFused) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 22, 26), smoother("S1", 2, 22, 26),
      smoother("S2", 3, 22, 26)};
  PipelineOptions options;
  options.threads_per_stage = 2;
  options.tile_shape = {4, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);

  // Several frames in flight at once: designs are pinned, state per frame.
  std::vector<PipelineHandle> handles;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    handles.push_back(executor.submit(seed));
  }
  for (std::size_t k = 0; k < handles.size(); ++k) {
    expect_pipeline_matches(stages, handles[k].wait(), k + 1);
  }
}

TEST(PipelineExecutor, FiftyRandomPairsMatchSequentialAndFused) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::vector<stencil::StencilProgram> stages =
        random_stage_pair(seed);
    PipelineOptions options;
    options.threads_per_stage = 2;
    options.tile_shape = {3, 0};
    PipelineExecutor executor(StageGraph::chain(stages), options);
    // Two frames in flight per chain: cross-frame interleaving must not
    // leak state between data-independent frames.
    PipelineHandle first = executor.submit(seed);
    PipelineHandle second = executor.submit(seed + 1000);
    expect_pipeline_matches(stages, first.wait(), seed);
    expect_pipeline_matches(stages, second.wait(), seed + 1000);
  }
}

TEST(PipelineExecutor, DegenerateTileShapes) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 16, 12), smoother("S1", 2, 16, 12)};
  // 1xN row tiles and Nx1 column tiles: the tracker and buffers must
  // handle single-row halos and per-column stitching alike.
  for (const poly::IntVec& shape :
       {poly::IntVec{1, 0}, poly::IntVec{0, 1}, poly::IntVec{1, 1}}) {
    PipelineOptions options;
    options.threads_per_stage = 2;
    options.tile_shape = shape;
    PipelineExecutor executor(StageGraph::chain(stages), options);
    expect_pipeline_matches(stages, executor.submit(11).wait(), 11);
  }
}

TEST(PipelineExecutor, BarrierModeMatchesToo) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 18, 20), smoother("S1", 2, 18, 20)};
  PipelineOptions options;
  options.threads_per_stage = 2;
  options.tile_shape = {3, 0};
  options.barrier = true;
  PipelineExecutor executor(StageGraph::chain(stages), options);
  const PipelineResult& result = executor.submit(5).wait();
  expect_pipeline_matches(stages, result, 5);
  // The barrier actually barriers: no consumer tile resolved before the
  // producer's last tile.
  ASSERT_EQ(result.timing.size(), 2u);
  EXPECT_GE(result.timing[1].first_tile_us, result.timing[0].last_tile_us);
}

TEST(PipelineExecutor, DiamondGraphJoinsBitIdentically) {
  // s0 -> {s1, s2} -> s3(A, B): the join consumes both branches; feeding
  // branch outputs through distinct inputs exercises per-input slices.
  const auto pointwise = [](const std::string& name, double w) {
    stencil::StencilProgram p(name, poly::Domain::box({2, 2}, {13, 13}));
    p.add_input("A", {{-1, 0}, {0, 0}, {0, 1}});
    p.set_kernel(stencil::make_weighted_sum({w, 1.0 - w, 0.5 * w}));
    return p;
  };
  StageGraph graph;
  graph.add_stage(smoother("SRC", 1, 16, 16));
  graph.add_stage(pointwise("L", 0.25));
  graph.add_stage(pointwise("R", 0.75));
  stencil::StencilProgram join("JOIN", poly::Domain::box({3, 3}, {12, 12}));
  join.add_input("A", {{0, 0}, {1, 0}});
  join.add_input("B", {{0, -1}, {0, 0}});
  join.set_kernel(stencil::make_weighted_sum({0.1, 0.2, 0.3, 0.4}));
  graph.add_stage(join);
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  graph.add_edge(1, 3, 0);
  graph.add_edge(2, 3, 1);

  PipelineOptions options;
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  PipelineExecutor executor(std::move(graph), options);
  const PipelineResult& result = executor.submit(9).wait();
  ASSERT_TRUE(result.ok()) << result.error;

  // Reference: golden source, then branches, then the join gathering from
  // both branch outputs in source order (inputs flattened, then refs).
  const StageGraph& g = executor.graph();
  const std::vector<double> src =
      stencil::run_golden(g.stages()[0].program, 9).outputs;
  const auto eval_on = [&](const stencil::StencilProgram& p,
                           const std::vector<const std::vector<double>*>&
                               feeds,
                           const std::vector<const poly::Domain*>& doms) {
    std::vector<double> out;
    std::vector<double> gathered;
    p.iteration().for_each([&](const poly::IntVec& i) {
      gathered.clear();
      for (std::size_t a = 0; a < p.inputs().size(); ++a) {
        for (const stencil::ArrayReference& ref : p.inputs()[a].refs) {
          poly::IntVec h = i;
          for (std::size_t d = 0; d < h.size(); ++d) {
            h[d] += ref.offset[d];
          }
          gathered.push_back(
              (*feeds[a])[static_cast<std::size_t>(doms[a]->lex_rank(h))]);
        }
      }
      out.push_back(p.kernel()(gathered));
    });
    return out;
  };
  const poly::Domain& src_dom = g.stages()[0].program.iteration();
  const std::vector<double> left =
      eval_on(g.stages()[1].program, {&src}, {&src_dom});
  const std::vector<double> right =
      eval_on(g.stages()[2].program, {&src}, {&src_dom});
  const std::vector<double> expect =
      eval_on(g.stages()[3].program, {&left, &right},
              {&g.stages()[1].program.iteration(),
               &g.stages()[2].program.iteration()});
  EXPECT_EQ(result.stages[3].outputs, expect);
}

// ---- pipelining behaviour ----------------------------------------------

TEST(PipelineExecutor, StageBuffersRetireInsteadOfHoldingTheFrame) {
  // Tall frame, band tiles, tight queues, one worker per stage: the
  // producer can only run a bounded distance ahead, so the edge buffer's
  // high-water mark must stay a band -- independent of frame height.
  const auto run = [](std::int64_t rows) {
    std::vector<stencil::StencilProgram> stages = {
        smoother("S0", 1, rows, 12), smoother("S1", 2, rows, 12)};
    PipelineOptions options;
    options.threads_per_stage = 1;
    options.queue_capacity = 2;
    options.tile_shape = {2, 0};
    PipelineExecutor executor(StageGraph::chain(stages), options);
    const PipelineResult& result = executor.submit(3).wait();
    EXPECT_TRUE(result.ok()) << result.error;
    return result.edges.at(0);
  };
  const StageBuffer::Occupancy short_frame = run(24);
  const StageBuffer::Occupancy tall_frame = run(96);

  EXPECT_GT(tall_frame.retired, 0);
  EXPECT_EQ(tall_frame.tiles, 0) << "slabs left resident at frame end";
  // Bounded steady state: the tall frame's high-water mark does not grow
  // with the frame (47 producer bands) -- it stays within the small
  // run-ahead window the queues allow.
  EXPECT_LE(tall_frame.max_tiles, short_frame.max_tiles + 2);
  EXPECT_LE(tall_frame.max_tiles, 10);
}

TEST(PipelineExecutor, ConsumerStartsBeforeProducerFinishes) {
  // With real per-tile work, tile-granular scheduling must start the
  // consumer strictly before the producer's frame completes. (The same
  // observation backs bench_pipeline's overlap metric.)
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 40, 16), smoother("S1", 2, 40, 16)};
  stages[0].set_kernel([](const std::vector<double>& v) {
    std::this_thread::sleep_for(std::chrono::microseconds(40));
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  PipelineOptions options;
  options.threads_per_stage = 2;
  options.tile_shape = {2, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);
  const PipelineResult& result = executor.submit(1).wait();
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_LT(result.timing[1].first_tile_us, result.timing[0].last_tile_us)
      << "no producer/consumer overlap";
}

// ---- cross-frame pipelining --------------------------------------------

TEST(PipelineExecutor, CrossFrameInterleavingBitIdentical) {
  // Sixteen frames pumped through a window of three: every frame must be
  // bit-identical to its own frame-serial reference, and the window gauge
  // must show that frames genuinely overlapped and fully drained.
  obs::Registry registry;
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 22, 26), smoother("S1", 2, 22, 26),
      smoother("S2", 3, 22, 26)};
  PipelineOptions options;
  options.name = "xf";
  options.threads_per_stage = 1;
  options.tile_shape = {4, 0};
  options.metrics = &registry;
  options.max_frames_in_flight = 3;
  PipelineExecutor executor(StageGraph::chain(stages), options);

  std::vector<PipelineHandle> handles;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    handles.push_back(executor.submit(seed));  // blocks at the window
  }
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    expect_pipeline_matches(stages, handles[seed].wait(), seed);
  }
  EXPECT_GE(registry.gauge("pipeline.xf.frames_in_flight_max").value(), 2)
      << "frames never overlapped";
  EXPECT_LE(registry.gauge("pipeline.xf.frames_in_flight_max").value(), 3)
      << "admission window exceeded";
  EXPECT_EQ(registry.gauge("pipeline.xf.frames_in_flight").value(), 0);
  EXPECT_EQ(registry.counter("pipeline.xf.frames_completed").value(), 16);
  EXPECT_EQ(
      registry.histogram("pipeline.xf.frame_interleave_overlap_us")
          .snapshot()
          .count,
      16);
}

TEST(PipelineExecutor, FrameSerialWindowAdmitsOneFrameAtATime) {
  obs::Registry registry;
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 16, 12), smoother("S1", 2, 16, 12)};
  PipelineOptions options;
  options.name = "serial";
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  options.metrics = &registry;
  options.max_frames_in_flight = 1;
  PipelineExecutor executor(StageGraph::chain(stages), options);

  // Pumping without waiting: submit() itself must serialize the frames.
  std::vector<PipelineHandle> handles;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    handles.push_back(executor.submit(seed));
  }
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_pipeline_matches(stages, handles[seed].wait(), seed);
  }
  EXPECT_EQ(registry.gauge("pipeline.serial.frames_in_flight_max").value(),
            1);
}

TEST(PipelineExecutor, SteadyStateRecyclesSlabsInsteadOfAllocating) {
  // The zero-allocation hot path: pumping many frames through one executor
  // must reuse retired slab storage, so fresh pool allocations are bounded
  // by the window's worst-case footprint -- one frame's slabs and slices
  // per admitted frame -- never by the number of frames.
  obs::Registry registry;
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 20, 14), smoother("S1", 2, 20, 14)};
  PipelineOptions options;
  options.name = "ss";
  options.threads_per_stage = 1;
  options.tile_shape = {2, 0};
  options.metrics = &registry;
  options.max_frames_in_flight = 3;
  PipelineExecutor executor(StageGraph::chain(stages), options);

  const std::size_t frames = 12;
  std::vector<PipelineHandle> handles;
  for (std::uint64_t seed = 0; seed < frames; ++seed) {
    handles.push_back(executor.submit(seed));
  }
  for (std::uint64_t seed = 0; seed < frames; ++seed) {
    expect_pipeline_matches(stages, handles[seed].wait(), seed);
  }

  const std::int64_t allocated =
      registry.counter("pipeline.edge.ss.s0_to_s1.slab_allocated").value();
  const std::int64_t recycled =
      registry.counter("pipeline.edge.ss.s0_to_s1.slab_recycled").value();
  const std::size_t footprint =
      executor.engine(0).plan_for(stages[0])->tiles.size() +
      executor.engine(1).plan_for(stages[1])->tiles.size();
  EXPECT_LE(allocated,
            static_cast<std::int64_t>(options.max_frames_in_flight *
                                      footprint))
      << "pool allocations grew past the window footprint";
  EXPECT_GT(recycled, allocated)
      << "steady state allocated more than it recycled over " << frames
      << " frames";
}

TEST(PipelineExecutor, DesignPinsReleasedAtShutdown) {
  // The executor pins every tile design at construction (the re-arm fast
  // path); a cancelled mid-flight frame must not leak those pins past
  // shutdown -- the caches must drop back to zero pinned entries.
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 30, 16), smoother("S1", 2, 30, 16)};
  std::atomic<int> fired{0};
  stages[0].set_kernel([&fired](const std::vector<double>& v) {
    fired.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(milliseconds(1));
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.queue_capacity = 2;
  options.tile_shape = {2, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);
  EXPECT_GT(executor.engine(0).cache().stats().pinned, 0u);
  EXPECT_GT(executor.engine(1).cache().stats().pinned, 0u);

  PipelineHandle handle = executor.submit(8);
  while (fired.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  handle.cancel();
  EXPECT_FALSE(handle.wait().ok());

  executor.shutdown(PipelineExecutor::Drain::kCancelPending);
  EXPECT_EQ(executor.engine(0).cache().stats().pinned, 0u)
      << "stage 0 designs still pinned after shutdown";
  EXPECT_EQ(executor.engine(1).cache().stats().pinned, 0u)
      << "stage 1 designs still pinned after shutdown";
}

TEST(PipelineExecutor, DesignPinsReleasedAfterDrainAllShutdown) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 16, 12), smoother("S1", 2, 16, 12)};
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);
  PipelineHandle handle = executor.submit(2);
  executor.shutdown(PipelineExecutor::Drain::kDrainAll);
  EXPECT_TRUE(handle.wait().ok());
  EXPECT_EQ(executor.engine(0).cache().stats().pinned, 0u);
  EXPECT_EQ(executor.engine(1).cache().stats().pinned, 0u);
}

TEST(PipelineExecutor, AbortedFrameDrainsEdgeSlabs) {
  // A frame cancelled mid-flight must not strand producer slabs in the
  // edge buffers: the abort path releases every skipped consumer tile, so
  // by the time the frame resolves the buffers are empty.
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 30, 16), smoother("S1", 2, 30, 16)};
  std::atomic<int> fired{0};
  stages[0].set_kernel([&fired](const std::vector<double>& v) {
    fired.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(milliseconds(1));
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.queue_capacity = 2;
  options.tile_shape = {2, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);

  PipelineHandle handle = executor.submit(8);
  while (fired.load(std::memory_order_relaxed) < 3) {
    std::this_thread::yield();
  }
  handle.cancel();
  const PipelineResult& result = handle.wait();
  EXPECT_TRUE(result.cancelled);
  ASSERT_EQ(result.edges.size(), 1u);
  EXPECT_EQ(result.edges[0].tiles, 0)
      << "aborted frame left slabs resident in the edge buffer";
  EXPECT_EQ(result.edges[0].elements, 0);
}

// ---- control surface ---------------------------------------------------

TEST(PipelineExecutor, CancelMidStageResolvesWithoutHanging) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 30, 16), smoother("S1", 2, 30, 16)};
  std::atomic<int> fired{0};
  stages[0].set_kernel([&fired](const std::vector<double>& v) {
    fired.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(milliseconds(1));
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.queue_capacity = 2;
  options.tile_shape = {2, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);

  PipelineHandle handle = executor.submit(8);
  while (fired.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  handle.cancel();
  const PipelineResult& result = handle.wait();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.cancelled) << result.error;

  // The executor survives the abort: the next frame completes normally.
  stages[0] = smoother("S0", 1, 30, 16);
  const PipelineResult& next = executor.submit(9).wait();
  EXPECT_TRUE(next.ok()) << next.error;
}

TEST(PipelineExecutor, ShutdownCancelPendingAbortsInFlight) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 30, 16), smoother("S1", 2, 30, 16)};
  stages[0].set_kernel([](const std::vector<double>& v) {
    std::this_thread::sleep_for(milliseconds(1));
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.tile_shape = {2, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);
  PipelineHandle handle = executor.submit(4);
  executor.shutdown(PipelineExecutor::Drain::kCancelPending);
  EXPECT_FALSE(handle.wait().ok());
  EXPECT_THROW(executor.submit(5), Error);
}

TEST(PipelineExecutor, ShutdownDrainAllFinishesInFlight) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 18, 20), smoother("S1", 2, 18, 20)};
  PipelineOptions options;
  options.threads_per_stage = 2;
  options.tile_shape = {3, 0};
  PipelineExecutor executor(StageGraph::chain(stages), options);
  PipelineHandle handle = executor.submit(6);
  executor.shutdown(PipelineExecutor::Drain::kDrainAll);
  expect_pipeline_matches(stages, handle.wait(), 6);
}

// ---- observability -----------------------------------------------------

TEST(PipelineExecutor, MetricsAreNamespacedPerStageEngine) {
  obs::Registry registry;
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 16, 12), smoother("S1", 2, 16, 12)};
  PipelineOptions options;
  options.name = "demo";
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  options.metrics = &registry;
  PipelineExecutor executor(StageGraph::chain(stages), options);
  ASSERT_TRUE(executor.submit(2).wait().ok());

  // Each stage engine publishes its own series -- no aggregation into one
  // flat engine.* namespace.
  EXPECT_GT(registry.counter("engine.demo.s0.tiles_executed").value(), 0);
  EXPECT_GT(registry.counter("engine.demo.s1.tiles_executed").value(), 0);
  EXPECT_GT(registry.counter("cache.demo.s0.hits").value(), 0);
  EXPECT_EQ(registry.counter("pipeline.demo.frames_completed").value(), 1);
  EXPECT_GT(registry.counter("pipeline.demo.tiles_released").value(), 0);
  // Edge telemetry: readiness histogram and retirement counter.
  EXPECT_GT(
      registry.counter("pipeline.edge.demo.s0_to_s1.tiles_retired").value(),
      0);
  EXPECT_GE(registry.gauge("pipeline.edge.demo.s0_to_s1.buffer_tiles_max")
                .value(),
            1);
  // Cross-frame telemetry: window gauges, overlap histogram (one sample
  // per completed frame), and the edge pool's allocation tallies.
  EXPECT_EQ(registry.gauge("pipeline.demo.frames_in_flight").value(), 0);
  EXPECT_GE(registry.gauge("pipeline.demo.frames_in_flight_max").value(), 1);
  EXPECT_EQ(registry.histogram("pipeline.demo.frame_interleave_overlap_us")
                .snapshot()
                .count,
            1);
  EXPECT_GT(
      registry.counter("pipeline.edge.demo.s0_to_s1.slab_allocated").value(),
      0);
}

// ---- atomic group admission --------------------------------------------

TEST(PipelineExecutor, SubmitGroupBitIdenticalToIndividualSubmits) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 20, 14), smoother("S1", 2, 20, 14)};
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.tile_shape = {4, 0};
  options.max_frames_in_flight = 4;
  PipelineExecutor executor(StageGraph::chain(stages), options);

  const std::vector<std::uint64_t> seeds = {3, 14, 15, 92};
  std::vector<PipelineHandle> handles = executor.submit_group(seeds);
  ASSERT_EQ(handles.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_pipeline_matches(stages, handles[i].wait(), seeds[i]);
  }
}

TEST(PipelineExecutor, SubmitGroupOversizedOrMismatchedThrows) {
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 16, 12), smoother("S1", 2, 16, 12)};
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  options.max_frames_in_flight = 2;
  PipelineExecutor executor(StageGraph::chain(stages), options);

  // A group larger than a non-zero window could never be admitted
  // atomically: refuse it instead of deadlocking the caller.
  EXPECT_THROW(executor.submit_group({1, 2, 3}), Error);

  // Positional frame hooks must match the seed count (empty = defaults).
  std::vector<FrameOptions> frames(1);
  EXPECT_THROW(executor.submit_group({1, 2}, std::move(frames)), Error);

  // An empty group is a no-op, not a blocking admission of nothing.
  EXPECT_TRUE(executor.submit_group({}).empty());

  // The failed calls left no window reservations behind: a full-window
  // group still fits.
  std::vector<PipelineHandle> handles = executor.submit_group({7, 8});
  ASSERT_EQ(handles.size(), 2u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    expect_pipeline_matches(stages, handles[i].wait(), 7 + i);
  }

  executor.shutdown();
  EXPECT_THROW(executor.submit_group({9}), Error);
}

TEST(PipelineExecutor, SubmitGroupWaitsForTheWholeWindow) {
  // Window of two, one slot occupied: a group of two must wait for the
  // occupant to drain and then be admitted as a unit -- the group is
  // never split across the busy window.
  obs::Registry registry;
  std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 18, 12), smoother("S1", 2, 18, 12)};
  PipelineOptions options;
  options.name = "grp";
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  options.metrics = &registry;
  options.max_frames_in_flight = 2;
  PipelineExecutor executor(StageGraph::chain(stages), options);

  PipelineHandle occupant = executor.submit(11);
  std::vector<PipelineHandle> group;
  std::thread submitter([&executor, &group] {
    group = executor.submit_group({21, 22});
  });
  submitter.join();  // unblocked by the occupant draining
  expect_pipeline_matches(stages, occupant.wait(), 11);
  ASSERT_EQ(group.size(), 2u);
  expect_pipeline_matches(stages, group[0].wait(), 21);
  expect_pipeline_matches(stages, group[1].wait(), 22);

  EXPECT_LE(registry.gauge("pipeline.grp.frames_in_flight_max").value(), 2);
  EXPECT_EQ(registry.gauge("pipeline.grp.frames_in_flight").value(), 0);
  EXPECT_EQ(registry.counter("pipeline.grp.frames_completed").value(), 3);
}

}  // namespace
}  // namespace nup::pipeline
