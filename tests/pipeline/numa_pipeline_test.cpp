// Locality-aware pipelined execution: with a faked multi-node topology the
// per-stage engines place tiles on nodes, edge slab pools split into
// per-node arenas, and stage buffers route slabs through the producer
// tile's arena -- none of which may change a single output bit. Fifty
// random two-stage chains run under NUP_FAKE_TOPOLOGY=2 and =4 and must
// match the same chains with --numa off; the per-edge resident-bytes gauge
// must track pool occupancy.

#include "pipeline/executor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/stage_graph.hpp"
#include "runtime/topology.hpp"
#include "stencil/gallery.hpp"
#include "testing/stencil_gen.hpp"

namespace nup::pipeline {
namespace {

using ::nup::testing::random_stage_pair;

struct FakeTopo {
  explicit FakeTopo(const char* n) { setenv("NUP_FAKE_TOPOLOGY", n, 1); }
  ~FakeTopo() { unsetenv("NUP_FAKE_TOPOLOGY"); }
};

std::vector<double> run_chain(
    const std::vector<stencil::StencilProgram>& stages,
    runtime::NumaMode numa, std::uint64_t seed, std::uint64_t seed2) {
  PipelineOptions options;
  options.threads_per_stage = 2;
  options.tile_shape = {3, 0};
  options.numa = numa;
  PipelineExecutor executor(StageGraph::chain(stages), options);
  // Two frames in flight: cross-frame slab recycling through the arenas
  // must not leak state between data-independent frames.
  PipelineHandle first = executor.submit(seed);
  PipelineHandle second = executor.submit(seed2);
  const PipelineResult& a = first.wait();
  const PipelineResult& b = second.wait();
  EXPECT_TRUE(a.ok()) << a.error;
  EXPECT_TRUE(b.ok()) << b.error;
  EXPECT_FALSE(a.stages.back().outputs.empty());
  // Both frames' sink outputs, concatenated: the differential covers the
  // cross-frame arena recycling too.
  std::vector<double> out = a.stages.back().outputs;
  out.insert(out.end(), b.stages.back().outputs.begin(),
             b.stages.back().outputs.end());
  return out;
}

// The tentpole differential: 50 random chains, fake 2-node and 4-node
// layouts, numa auto vs numa off -- bit-identical sink outputs.
TEST(PipelineNuma, FiftyRandomChainsBitIdenticalToOff) {
  int chain = 0;
  for (const char* fake : {"2", "4"}) {
    FakeTopo guard(fake);
    for (std::uint64_t seed = 0; seed < 25; ++seed, ++chain) {
      const std::vector<stencil::StencilProgram> stages =
          random_stage_pair(seed);
      const std::vector<double> off =
          run_chain(stages, runtime::NumaMode::kOff, seed, seed + 1000);
      const std::vector<double> aut =
          run_chain(stages, runtime::NumaMode::kAuto, seed, seed + 1000);
      EXPECT_EQ(aut, off) << "chain " << chain << " fake " << fake
                          << " seed " << seed;
    }
  }
}

TEST(PipelineNuma, InterleaveBitIdenticalToOff) {
  FakeTopo guard("2");
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    const std::vector<stencil::StencilProgram> stages =
        random_stage_pair(seed);
    EXPECT_EQ(
        run_chain(stages, runtime::NumaMode::kInterleave, seed, seed + 1),
        run_chain(stages, runtime::NumaMode::kOff, seed, seed + 1))
        << "seed " << seed;
  }
}

// Stage engines inherit the pipeline's numa mode and report their node
// count; the per-edge pool publishes its resident bytes.
TEST(PipelineNuma, EnginesSeeNodesAndEdgePoolsPublishResidency) {
  FakeTopo guard("2");
  obs::Registry registry;
  const std::vector<stencil::StencilProgram> stages = random_stage_pair(3);
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  options.metrics = &registry;
  options.numa = runtime::NumaMode::kAuto;
  PipelineExecutor executor(StageGraph::chain(stages), options);
  ASSERT_TRUE(executor.submit(7).wait().ok());

  for (std::size_t s = 0; s < executor.graph().stage_count(); ++s) {
    EXPECT_EQ(executor.engine(s).topology().node_count(), 2u);
    EXPECT_EQ(executor.engine(s).stats().nodes, 2u);
  }
  ASSERT_EQ(executor.graph().edges().size(), 1u);
  const std::string gauge_name =
      "pool." + executor.graph().edges()[0].label + ".resident_bytes";
  // After a frame the edge pool holds its recycled slabs: resident bytes
  // are positive and mirror the pool's own accounting.
  EXPECT_GT(registry.gauge(gauge_name).value(), 0);
  executor.shutdown();
}

TEST(PipelineNuma, OffKeepsSingleArenaPoolsAndSingleNodeEngines) {
  FakeTopo guard("2");  // even with a multi-node host, off ignores it
  obs::Registry registry;
  const std::vector<stencil::StencilProgram> stages = random_stage_pair(4);
  PipelineOptions options;
  options.threads_per_stage = 1;
  options.tile_shape = {3, 0};
  options.metrics = &registry;
  PipelineExecutor executor(StageGraph::chain(stages), options);
  ASSERT_TRUE(executor.submit(9).wait().ok());
  for (std::size_t s = 0; s < executor.graph().stage_count(); ++s) {
    EXPECT_EQ(executor.engine(s).topology().node_count(), 1u);
    EXPECT_EQ(executor.engine(s).stats().tiles_stolen, 0);
  }
  executor.shutdown();
}

}  // namespace
}  // namespace nup::pipeline
