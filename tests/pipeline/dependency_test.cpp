// Tile-dependency mapping and readiness tracking: each consumer tile must
// wait for exactly the producer tiles covering its halo (minimal sets),
// become ready exactly once per frame, keep concurrent frames' countdowns
// independent, and degrade to whole-frame waits in barrier mode.

#include "pipeline/dependency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pipeline/stage_graph.hpp"
#include "runtime/tiler.hpp"
#include "util/error.hpp"

namespace nup::pipeline {
namespace {

stencil::StencilProgram smoother(const std::string& name, std::int64_t lo,
                                 std::int64_t rows, std::int64_t cols) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  return p;
}

// Two radius-1 smoothers over a 14x10 grid, both cut into 2-row bands:
// the covering sets are exactly the consumer band plus one band of halo
// on each side.
struct BandFixture {
  BandFixture()
      : s0(smoother("S0", 1, 14, 10)), s1(smoother("S1", 2, 14, 10)) {
    runtime::TilerOptions topts;
    topts.tile_shape = {2, 0};
    p0 = runtime::plan_tiles(s0, topts);
    p1 = runtime::plan_tiles(s1, topts);
  }
  stencil::StencilProgram s0, s1;
  runtime::TilePlan p0, p1;
};

TEST(EdgeTileMap, CoversExactlyTheHaloBand) {
  BandFixture fx;
  // S0 rows 1..12 -> 6 bands; S1 rows 2..11 -> 5 bands.
  ASSERT_EQ(fx.p0.tiles.size(), 6u);
  ASSERT_EQ(fx.p1.tiles.size(), 5u);
  const EdgeTileMap map = map_tile_dependencies(fx.p0, fx.p1, 0);

  for (std::size_t c = 0; c < fx.p1.tiles.size(); ++c) {
    const runtime::Tile& tile = fx.p1.tiles[c];
    // The halo band in producer-tile indices: producer band b holds rows
    // [1 + 2b, 2 + 2b], the consumer needs rows [lo-1, hi+1].
    std::vector<std::size_t> expect;
    for (std::size_t b = 0; b < fx.p0.tiles.size(); ++b) {
      const std::int64_t blo = fx.p0.tiles[b].lo[0];
      const std::int64_t bhi = fx.p0.tiles[b].hi[0];
      if (bhi >= tile.lo[0] - 1 && blo <= tile.hi[0] + 1) expect.push_back(b);
    }
    EXPECT_EQ(map.producers_of[c], expect) << "consumer band " << c;
    // Minimality: never the whole frame.
    EXPECT_LT(map.producers_of[c].size(), fx.p0.tiles.size());
  }

  // consumers_of is the exact transpose.
  for (std::size_t p = 0; p < map.consumers_of.size(); ++p) {
    for (const std::size_t c : map.consumers_of[p]) {
      const auto& prods = map.producers_of[c];
      EXPECT_TRUE(std::find(prods.begin(), prods.end(), p) != prods.end());
    }
  }
}

TEST(DependencyTracker, TilesBecomeReadyExactlyOnce) {
  BandFixture fx;
  const std::vector<stencil::StencilProgram> chain = {fx.s0, fx.s1};
  const StageGraph graph = StageGraph::chain(chain);
  const auto map = std::make_shared<const EdgeTileMap>(
      map_tile_dependencies(fx.p0, fx.p1, 0));
  DependencyTracker tracker(graph, {map},
                            {fx.p0.tiles.size(), fx.p1.tiles.size()});

  // Arming a frame readies exactly the source tiles.
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto r : tracker.arm(7)) {
    EXPECT_EQ(r.frame, 7u);
    EXPECT_EQ(r.stage, 0u);
    EXPECT_TRUE(seen.insert({r.stage, r.tile}).second);
  }
  EXPECT_EQ(seen.size(), fx.p0.tiles.size());

  // Resolve producer bands top-down: each consumer band becomes ready
  // exactly when the band below its halo resolves, and exactly once.
  for (std::size_t p = 0; p < fx.p0.tiles.size(); ++p) {
    for (const auto r : tracker.resolve(7, 0, p)) {
      EXPECT_EQ(r.frame, 7u);
      EXPECT_EQ(r.stage, 1u);
      EXPECT_TRUE(seen.insert({r.stage, r.tile}).second)
          << "tile readied twice";
      // Every covering producer of this consumer has resolved.
      for (const std::size_t need : map->producers_of[r.tile]) {
        EXPECT_LE(need, p);
      }
    }
  }
  EXPECT_EQ(seen.size(), fx.p0.tiles.size() + fx.p1.tiles.size());
}

TEST(DependencyTracker, FirstConsumerReadyBeforeProducerFinishes) {
  BandFixture fx;
  const std::vector<stencil::StencilProgram> chain = {fx.s0, fx.s1};
  const StageGraph graph = StageGraph::chain(chain);
  const auto map = std::make_shared<const EdgeTileMap>(
      map_tile_dependencies(fx.p0, fx.p1, 0));
  DependencyTracker tracker(graph, {map},
                            {fx.p0.tiles.size(), fx.p1.tiles.size()});
  tracker.arm(0);

  // Resolving just the first two producer bands readies the first
  // consumer band -- the overlap the pipeline exploits.
  std::vector<DependencyTracker::Ready> ready;
  for (std::size_t p = 0; p < 2; ++p) {
    for (const auto r : tracker.resolve(0, 0, p)) ready.push_back(r);
  }
  ASSERT_FALSE(ready.empty());
  EXPECT_EQ(ready.front().stage, 1u);
  EXPECT_EQ(ready.front().tile, 0u);
}

TEST(DependencyTracker, ConcurrentFramesCountDownIndependently) {
  BandFixture fx;
  const std::vector<stencil::StencilProgram> chain = {fx.s0, fx.s1};
  const StageGraph graph = StageGraph::chain(chain);
  const auto map = std::make_shared<const EdgeTileMap>(
      map_tile_dependencies(fx.p0, fx.p1, 0));
  DependencyTracker tracker(graph, {map},
                            {fx.p0.tiles.size(), fx.p1.tiles.size()});
  ASSERT_EQ(tracker.arm(0).size(), fx.p0.tiles.size());
  ASSERT_EQ(tracker.arm(1).size(), fx.p0.tiles.size());
  EXPECT_EQ(tracker.frames_armed(), 2u);

  // Fully resolving frame 0's producer stage readies all of frame 0's
  // consumers and none of frame 1's.
  std::size_t f0_ready = 0;
  for (std::size_t p = 0; p < fx.p0.tiles.size(); ++p) {
    for (const auto r : tracker.resolve(0, 0, p)) {
      EXPECT_EQ(r.frame, 0u);
      ++f0_ready;
    }
  }
  EXPECT_EQ(f0_ready, fx.p1.tiles.size());

  // Frame 1 is untouched: its countdowns start from the baseline.
  std::size_t f1_ready = 0;
  for (std::size_t p = 0; p < fx.p0.tiles.size(); ++p) {
    for (const auto r : tracker.resolve(1, 0, p)) {
      EXPECT_EQ(r.frame, 1u);
      ++f1_ready;
    }
  }
  EXPECT_EQ(f1_ready, fx.p1.tiles.size());
}

TEST(DependencyTracker, RetiredSlotsAreReused) {
  BandFixture fx;
  const std::vector<stencil::StencilProgram> chain = {fx.s0, fx.s1};
  const StageGraph graph = StageGraph::chain(chain);
  const auto map = std::make_shared<const EdgeTileMap>(
      map_tile_dependencies(fx.p0, fx.p1, 0));
  DependencyTracker tracker(graph, {map},
                            {fx.p0.tiles.size(), fx.p1.tiles.size()});

  // Many serial frames never hold more than one slot; each recycled slot
  // serves the full dependency protocol again from the baseline.
  for (std::uint64_t f = 0; f < 32; ++f) {
    ASSERT_EQ(tracker.arm(f).size(), fx.p0.tiles.size());
    EXPECT_EQ(tracker.frames_armed(), 1u);
    std::size_t readied = 0;
    for (std::size_t p = 0; p < fx.p0.tiles.size(); ++p) {
      readied += tracker.resolve(f, 0, p).size();
    }
    EXPECT_EQ(readied, fx.p1.tiles.size());
    tracker.retire(f);
    EXPECT_EQ(tracker.frames_armed(), 0u);
  }
}

TEST(DependencyTracker, MisuseThrows) {
  BandFixture fx;
  const std::vector<stencil::StencilProgram> chain = {fx.s0, fx.s1};
  const StageGraph graph = StageGraph::chain(chain);
  const auto map = std::make_shared<const EdgeTileMap>(
      map_tile_dependencies(fx.p0, fx.p1, 0));
  DependencyTracker tracker(graph, {map},
                            {fx.p0.tiles.size(), fx.p1.tiles.size()});
  tracker.arm(3);
  EXPECT_THROW(tracker.arm(3), Error);          // duplicate id
  EXPECT_THROW(tracker.resolve(4, 0, 0), Error);  // never armed
  tracker.retire(3);
  EXPECT_THROW(tracker.resolve(3, 0, 0), Error);  // retired
  EXPECT_THROW(tracker.retire(3), Error);
}

TEST(DependencyTracker, BarrierModeWaitsForTheWholeFrame) {
  BandFixture fx;
  const std::vector<stencil::StencilProgram> chain = {fx.s0, fx.s1};
  const StageGraph graph = StageGraph::chain(chain);
  const auto map = std::make_shared<const EdgeTileMap>(
      map_tile_dependencies(fx.p0, fx.p1, 0));
  DependencyTracker tracker(graph, {map},
                            {fx.p0.tiles.size(), fx.p1.tiles.size()},
                            /*barrier=*/true);
  tracker.arm(0);

  std::size_t readied = 0;
  for (std::size_t p = 0; p + 1 < fx.p0.tiles.size(); ++p) {
    readied += tracker.resolve(0, 0, p).size();
  }
  EXPECT_EQ(readied, 0u) << "consumer started before the barrier";
  const auto last = tracker.resolve(0, 0, fx.p0.tiles.size() - 1);
  EXPECT_EQ(last.size(), fx.p1.tiles.size());

  // The barrier countdown is per frame too: a second frame armed into the
  // recycled slot waits for its own whole producer frame.
  tracker.retire(0);
  tracker.arm(1);
  readied = 0;
  for (std::size_t p = 0; p + 1 < fx.p0.tiles.size(); ++p) {
    readied += tracker.resolve(1, 0, p).size();
  }
  EXPECT_EQ(readied, 0u);
  EXPECT_EQ(tracker.resolve(1, 0, fx.p0.tiles.size() - 1).size(),
            fx.p1.tiles.size());
}

}  // namespace
}  // namespace nup::pipeline
