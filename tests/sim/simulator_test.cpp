#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"

namespace nup::sim {
namespace {

SimResult run(const stencil::StencilProgram& p, SimOptions options = {}) {
  return simulate(p, arch::build_design(p), options);
}

void expect_matches_golden(const stencil::StencilProgram& p,
                           const SimResult& result, std::uint64_t seed) {
  const stencil::GoldenRun golden = stencil::run_golden(p, seed);
  ASSERT_EQ(result.outputs.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(result.outputs[i], golden.outputs[i]) << "output " << i;
  }
}

TEST(Simulator, DenoiseSmallMatchesGolden) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const SimResult r = run(p);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.kernel_fires, p.iteration().count());
  expect_matches_golden(p, r, 1);
}

TEST(Simulator, AllPaperBenchmarksSmallScaleMatchGolden) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(20, 26),  stencil::rician_2d(20, 26),
      stencil::sobel_2d(20, 26),    stencil::bicubic_2d(12, 40),
      stencil::denoise_3d(8, 10, 12),
      stencil::segmentation_3d(8, 10, 12)};
  for (const stencil::StencilProgram& p : programs) {
    const SimResult r = run(p);
    EXPECT_FALSE(r.deadlocked) << p.name() << ": " << r.deadlock_detail;
    EXPECT_EQ(r.kernel_fires, p.iteration().count()) << p.name();
    expect_matches_golden(p, r, 1);
  }
}

TEST(Simulator, SteadyStateIsFullyPipelined) {
  // Design target 1 (Section 2.3): one output per cycle in steady state,
  // modulo the hull-border elements the filters discard at row turns.
  const stencil::StencilProgram p = stencil::denoise_2d(64, 256);
  const SimResult r = run(p);
  EXPECT_LT(r.steady_ii, 1.05);
  EXPECT_GE(r.steady_ii, 1.0);
}

TEST(Simulator, FillLatencyIsAboutTwoRows) {
  // DENOISE needs the first two rows plus one element before the first
  // fire (Section 3.4.1), plus the chain's pipeline latency.
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const SimResult r = run(p);
  EXPECT_GE(r.fill_latency, 2 * 32);
  EXPECT_LE(r.fill_latency, 2 * 32 + 8);
}

TEST(Simulator, FifoOccupancyNeverExceedsDepth) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = simulate(p, design, {});
  ASSERT_EQ(r.fifo_max_fill.size(), 1u);
  for (std::size_t k = 0; k < design.systems[0].fifos.size(); ++k) {
    EXPECT_LE(r.fifo_max_fill[0][k], design.systems[0].fifos[k].depth);
  }
}

TEST(Simulator, TightSizingIsReached) {
  // The computed FIFO depths are necessary, not just sufficient: the big
  // row FIFOs fill to capacity during execution.
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = simulate(p, design, {});
  EXPECT_EQ(r.fifo_max_fill[0][0], design.systems[0].fifos[0].depth);
  EXPECT_EQ(r.fifo_max_fill[0][3], design.systems[0].fifos[3].depth);
}

TEST(Simulator, DenoiseSmallMaxFillsMatchTable2Structure) {
  // Table 2 at 24x32: the row FIFOs carry a full row minus one element
  // ({cols-1, 1, 1, cols-1}) and the simulation reaches exactly those
  // occupancies -- the non-uniform sizing is tight in both directions.
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = simulate(p, design, {});
  ASSERT_EQ(r.fifo_max_fill.size(), 1u);
  const std::vector<std::int64_t> expected = {31, 1, 1, 31};
  EXPECT_EQ(r.fifo_max_fill[0], expected);
}

TEST(Simulator, DenoisePaperScaleMaxFills) {
  // The paper's 768x1024 DENOISE configuration, runnable at full scale on
  // the fast backend: every reuse FIFO fills to exactly its designed
  // depth {1023, 1, 1, 1023} and never beyond.
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  SimOptions options;
  options.backend = SimBackend::kFast;
  options.record_outputs = false;
  const SimResult r = simulate(p, design, options);
  ASSERT_FALSE(r.deadlocked);
  ASSERT_EQ(r.fifo_max_fill.size(), 1u);
  const std::vector<std::int64_t> expected = {1023, 1, 1, 1023};
  EXPECT_EQ(r.fifo_max_fill[0], expected);
  for (std::size_t k = 0; k < design.systems[0].fifos.size(); ++k) {
    EXPECT_EQ(r.fifo_max_fill[0][k], design.systems[0].fifos[k].depth);
  }
}

TEST(Simulator, SkewedGridAdaptsAutomatically) {
  // Fig 9: the distributed modules adjust the number of buffered elements
  // on a skewed grid without a centralized controller.
  const stencil::StencilProgram p = stencil::skewed_demo(16, 24);
  arch::BuildOptions options;
  options.exact_sizing = true;
  options.exact_streaming = true;
  const arch::AcceleratorDesign design = arch::build_design(p, options);
  const SimResult r = simulate(p, design, {});
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  EXPECT_EQ(r.kernel_fires, p.iteration().count());
  expect_matches_golden(p, r, 1);
}

TEST(Simulator, SkewedGridWithHullStreamingAlsoWorks) {
  const stencil::StencilProgram p = stencil::skewed_demo(12, 18);
  const SimResult r = run(p);
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  expect_matches_golden(p, r, 1);
}

TEST(Simulator, TriangularDomainWorks) {
  const stencil::StencilProgram p = stencil::triangular_demo(20);
  const SimResult r = run(p);
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  expect_matches_golden(p, r, 1);
}

TEST(Simulator, MultiArrayProgram) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {14, 18}));
  p.add_input("A", {{-1, 0}, {0, 0}, {1, 0}});
  p.add_input("W", {{0, -1}, {0, 1}});
  p.set_kernel(stencil::make_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2}));
  const SimResult r = run(p);
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  EXPECT_EQ(r.kernel_fires, p.iteration().count());
  expect_matches_golden(p, r, 1);
}

TEST(Simulator, SingleReferenceProgram) {
  stencil::StencilProgram p("COPY", poly::Domain::box({0, 0}, {9, 9}));
  p.add_input("A", {{0, 0}});
  const SimResult r = run(p);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.kernel_fires, 100);
  EXPECT_EQ(r.steady_ii, 1.0);
}

TEST(Simulator, BandwidthTradedDesignStillCorrect) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(design.systems[0], 1);
  const SimResult r = simulate(p, design, {});
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  expect_matches_golden(p, r, 1);
}

TEST(Simulator, FullyCutDesignStillCorrect) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(
      design.systems[0], design.systems[0].filter_count() - 1);
  EXPECT_EQ(design.systems[0].total_buffer_size(), 0);
  const SimResult r = simulate(p, design, {});
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  expect_matches_golden(p, r, 1);
}

TEST(Simulator, OutputCallbackSeesIterationOrder) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 14);
  const arch::AcceleratorDesign design = arch::build_design(p);
  AcceleratorSim sim(p, design, {});
  std::vector<poly::IntVec> order;
  sim.set_output_callback(
      [&](const poly::IntVec& i, double) { order.push_back(i); });
  sim.run();
  ASSERT_EQ(static_cast<std::int64_t>(order.size()), p.iteration().count());
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_TRUE(poly::lex_less(order[k - 1], order[k]));
  }
}

TEST(Simulator, RecordOutputsOffSavesMemory) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 14);
  SimOptions options;
  options.record_outputs = false;
  const SimResult r = run(p, options);
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_EQ(r.kernel_fires, p.iteration().count());
}

TEST(Simulator, DifferentSeedsProduceDifferentOutputs) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 14);
  SimOptions a;
  a.seed = 1;
  SimOptions b;
  b.seed = 99;
  const SimResult ra = run(p, a);
  const SimResult rb = run(p, b);
  EXPECT_NE(ra.outputs.front(), rb.outputs.front());
}

}  // namespace
}  // namespace nup::sim
