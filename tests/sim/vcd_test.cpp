#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "arch/builder.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

SimResult traced(const stencil::StencilProgram& p,
                 const arch::AcceleratorDesign& design,
                 std::int64_t cycles) {
  SimOptions options;
  options.trace_cycles = cycles;
  return simulate(p, design, options);
}

TEST(Vcd, HeaderAndDefinitions) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string vcd =
      trace_to_vcd(traced(p, design, 50), design, "denoise");
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module denoise $end"), std::string::npos);
  EXPECT_NE(vcd.find("kernel_fire"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // One status var per filter, one fill var per FIFO.
  for (int k = 0; k < 5; ++k) {
    EXPECT_NE(vcd.find("filter_" + std::to_string(k) + "_status"),
              std::string::npos);
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_NE(vcd.find("fifo_" + std::to_string(k) + "_fill"),
              std::string::npos);
  }
}

TEST(Vcd, TimestampsAreMonotonic) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string vcd = trace_to_vcd(traced(p, design, 80), design);
  std::istringstream in(vcd);
  std::string line;
  long prev = -1;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') {
      const long t = std::strtol(line.c_str() + 1, nullptr, 10);
      EXPECT_GT(t, prev) << line;
      prev = t;
    }
  }
  EXPECT_GE(prev, 80);
}

TEST(Vcd, FireTogglesAtFirstKernelFire) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = traced(p, design, 60);
  const std::string vcd = trace_to_vcd(r, design);
  // The fire wire (first declared id '!') must rise exactly at the fill
  // latency.
  EXPECT_NE(vcd.find("#" + std::to_string(r.fill_latency) + "\n1!"),
            std::string::npos);
}

TEST(Vcd, ChangeDumpOnlyRecordsChanges) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string vcd = trace_to_vcd(traced(p, design, 40), design);
  // Filter 0 discards the entire traced prefix: after the initial dump it
  // changes once (s -> d at cycle 1) and then stays; there must be no
  // repeated identical change lines for it on consecutive cycles.
  std::istringstream in(vcd);
  std::string line;
  int changes_for_filter0 = 0;
  bool past_definitions = false;
  while (std::getline(in, line)) {
    if (line.find("$enddefinitions") != std::string::npos) {
      past_definitions = true;
      continue;
    }
    // '"' is the id of filter 0's status (second declared var).
    if (past_definitions && line.size() >= 2 && line[0] == 'b' &&
        line.back() == '"') {
      ++changes_for_filter0;
    }
  }
  EXPECT_LE(changes_for_filter0, 3);
  EXPECT_GE(changes_for_filter0, 2);  // initial + s->d
}

TEST(Vcd, RequiresTrace) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 12);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = simulate(p, design, {});
  EXPECT_THROW(trace_to_vcd(r, design), SimulationError);
}

TEST(Vcd, WritesFile) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 12);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = traced(p, design, 20);
  EXPECT_TRUE(write_vcd("/tmp/nup_vcd_test.vcd", r, design));
  EXPECT_FALSE(write_vcd("/nonexistent-dir/x.vcd", r, design));
}

}  // namespace
}  // namespace nup::sim
