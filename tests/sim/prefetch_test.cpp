#include "sim/prefetch.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "arch/builder.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

std::shared_ptr<PrefetchFeed> make_feed(PrefetchFeed::Config config,
                                        std::uint64_t seed = 1) {
  return std::make_shared<PrefetchFeed>(
      std::make_shared<SyntheticFeed>(seed, 0), config);
}

TEST(Prefetch, DataArrivesAfterLatency) {
  PrefetchFeed::Config config;
  config.latency_cycles = 5;
  config.words_per_cycle = 1;
  config.buffer_depth = 8;
  auto feed = make_feed(config);
  const poly::IntVec h{0, 0};
  EXPECT_FALSE(feed->available(h));
  for (int t = 0; t < 5; ++t) {
    feed->tick();
    EXPECT_FALSE(feed->available(h)) << "tick " << t;
  }
  feed->tick();  // first word completes at now == 1 + latency
  EXPECT_TRUE(feed->available(h));
  EXPECT_EQ(feed->read(h), stencil::synthetic_value(1, 0, h));
}

TEST(Prefetch, BandwidthLimitsArrivalRate) {
  PrefetchFeed::Config config;
  config.latency_cycles = 1;
  config.words_per_cycle = 1;
  config.buffer_depth = 100;
  auto feed = make_feed(config);
  for (int t = 0; t < 10; ++t) feed->tick();
  // After 10 ticks at 1 word/cycle with latency 1, at most 9 arrived.
  EXPECT_LE(feed->buffered(), 9);
  EXPECT_GE(feed->buffered(), 8);
}

TEST(Prefetch, BufferDepthCapsOutstanding) {
  PrefetchFeed::Config config;
  config.latency_cycles = 100;  // nothing completes during the test
  config.words_per_cycle = 4;
  config.buffer_depth = 10;
  auto feed = make_feed(config);
  for (int t = 0; t < 50; ++t) feed->tick();
  EXPECT_EQ(feed->buffered(), 0);  // still in flight
  for (int t = 0; t < 100; ++t) feed->tick();
  EXPECT_EQ(feed->buffered(), 10);  // window full, never beyond
}

TEST(Prefetch, ReadFromEmptyThrows) {
  auto feed = make_feed({});
  EXPECT_THROW(feed->read({0, 0}), SimulationError);
}

TEST(Prefetch, InvalidConfigRejected) {
  PrefetchFeed::Config bad;
  bad.buffer_depth = 0;
  EXPECT_THROW(PrefetchFeed(std::make_shared<SyntheticFeed>(1, 0), bad),
               SimulationError);
  EXPECT_THROW(PrefetchFeed(nullptr, {}), SimulationError);
}

TEST(Prefetch, AcceleratorHidesDramLatencyWithSmallBuffer) {
  // Appendix 9.3: a prefetcher with a small buffer hides the bus latency;
  // the accelerator still reaches II ~ 1 and produces correct data.
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const arch::AcceleratorDesign design = arch::build_design(p);
  AcceleratorSim sim(p, design, {});
  PrefetchFeed::Config config;
  config.latency_cycles = 50;
  config.words_per_cycle = 1;
  // Little's law: the prefetch window must cover the latency to sustain
  // one word per cycle; 64 outstanding words suffice and are tiny next to
  // the grid.
  config.buffer_depth = 64;
  sim.set_feed(0, 0, make_feed(config));
  const SimResult r = sim.run();
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  EXPECT_EQ(r.kernel_fires, p.iteration().count());
  // Fill takes the latency hit once; steady state is unchanged.
  EXPECT_LT(r.steady_ii, 1.1);
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  ASSERT_EQ(r.outputs.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(r.outputs[i], golden.outputs[i]);
  }
}

TEST(Prefetch, StarvedBandwidthDegradesThroughputGracefully) {
  // With the DRAM only delivering a word every other cycle the accelerator
  // cannot do better than II ~ 2, but it must stay correct.
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  SimOptions options;
  options.stall_limit = 1'000'000;
  AcceleratorSim slow(p, design, options);

  // A rate-limited feed: one word every 2 ticks.
  class HalfRateFeed final : public ExternalFeed {
   public:
    void tick() override { credit_ += (++parity_ % 2 == 0) ? 1 : 0; }
    bool available(const poly::IntVec&) override { return credit_ > 0; }
    double read(const poly::IntVec& h) override {
      --credit_;
      return stencil::synthetic_value(1, 0, h);
    }

   private:
    std::int64_t parity_ = 0;
    std::int64_t credit_ = 0;
  };
  slow.set_feed(0, 0, std::make_shared<HalfRateFeed>());
  const SimResult r = slow.run();
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  EXPECT_EQ(r.kernel_fires, p.iteration().count());
  EXPECT_GT(r.steady_ii, 1.8);
  EXPECT_LT(r.steady_ii, 2.3);
}

}  // namespace
}  // namespace nup::sim
