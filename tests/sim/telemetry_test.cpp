// Telemetry of a simulation run: per-FIFO high-water marks never exceed
// the designed depths (the paper's Eq. 2 sizing, checked live), the
// fill/steady/drain phase boundaries are ordered, per-filter stall cycles
// agree between the two backends, and publish_sim_telemetry lands it all
// in a metrics registry.

#include <gtest/gtest.h>

#include <set>

#include "arch/builder.hpp"
#include "obs/metrics.hpp"
#include "poly/affine.hpp"
#include "runtime/telemetry.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/rng.hpp"

namespace nup::sim {
namespace {

SimResult run_backend(const stencil::StencilProgram& p,
                      const arch::AcceleratorDesign& design,
                      SimBackend backend) {
  SimOptions options;
  options.backend = backend;
  options.record_outputs = false;
  return simulate(p, design, options);
}

void expect_high_water_within_depth(
    const stencil::StencilProgram& p,
    const arch::AcceleratorDesign& design, const SimResult& r,
    bool expect_tight) {
  ASSERT_FALSE(r.deadlocked) << p.name();
  ASSERT_EQ(r.fifo_max_fill.size(), design.systems.size()) << p.name();
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& ms = design.systems[s];
    ASSERT_EQ(r.fifo_max_fill[s].size(), ms.fifos.size()) << p.name();
    for (std::size_t k = 0; k < ms.fifos.size(); ++k) {
      if (ms.fifos[k].cut) continue;
      EXPECT_LE(r.fifo_max_fill[s][k], ms.fifos[k].depth)
          << p.name() << " " << ms.array << " fifo " << k;
      if (expect_tight) {
        // The sizing is the max reuse distance: a full run touches every
        // reuse pair, so the peak occupancy reaches the designed depth.
        EXPECT_EQ(r.fifo_max_fill[s][k], ms.fifos[k].depth)
            << p.name() << " " << ms.array << " fifo " << k;
      }
    }
  }
}

TEST(Telemetry, DenoiseHighWaterEqualsDesignedDepthBothBackends) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 128);
  const arch::AcceleratorDesign design = arch::build_design(p);
  // 5-point window on 128-wide rows: chain depths {row-1, 1, 1, row-1}.
  ASSERT_EQ(design.systems.size(), 1u);
  ASSERT_EQ(design.systems[0].fifos.size(), 4u);
  EXPECT_EQ(design.systems[0].fifos[0].depth, 127);
  EXPECT_EQ(design.systems[0].fifos[1].depth, 1);
  EXPECT_EQ(design.systems[0].fifos[2].depth, 1);
  EXPECT_EQ(design.systems[0].fifos[3].depth, 127);
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    const SimResult r = run_backend(p, design, backend);
    expect_high_water_within_depth(p, design, r, /*expect_tight=*/true);
  }
}

TEST(Telemetry, PhaseBoundariesAreOrdered) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 48);
  const arch::AcceleratorDesign design = arch::build_design(p);
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    const SimResult r = run_backend(p, design, backend);
    ASSERT_GT(r.kernel_fires, 0);
    // fill = [1, fill_latency], steady = (fill_latency, drain_start],
    // drain = (drain_start, cycles].
    EXPECT_GT(r.fill_latency, 0);
    EXPECT_GT(r.drain_start, r.fill_latency);
    EXPECT_LE(r.drain_start, r.cycles);
  }
}

TEST(Telemetry, DrainBoundaryIsDegenerateOnCompletedRuns) {
  // Every kernel fire consumes a fresh off-chip element at each segment
  // head (same-cycle flow-through: the newest reference's data enters and
  // reaches its port in one cycle), so a completed run streams until the
  // final fire -- drain_start == cycles in both streaming modes. A real
  // drain tail only appears once module latencies stop being idealized.
  const stencil::StencilProgram p = stencil::denoise_2d(32, 48);
  for (const bool exact_streaming : {false, true}) {
    arch::BuildOptions opts;
    opts.exact_streaming = exact_streaming;
    const arch::AcceleratorDesign design = arch::build_design(p, opts);
    for (const SimBackend backend :
         {SimBackend::kReference, SimBackend::kFast}) {
      const SimResult r = run_backend(p, design, backend);
      ASSERT_FALSE(r.deadlocked);
      EXPECT_EQ(r.drain_start, r.cycles);
    }
  }
}

TEST(Telemetry, DeadlockFreezesTheDrainBoundary) {
  // On a wedged run the boundary marks the last cycle data still streamed
  // in: the stall-limit cycles spin past it with nothing entering the
  // chain. First diagnostic to read when a run hangs.
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[3].depth = 1;  // needs 23: wedges mid-run
  SimOptions options;
  options.stall_limit = 500;
  options.validate = false;  // report the wedge instead of throwing
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    options.backend = backend;
    const SimResult r = simulate(p, design, options);
    ASSERT_TRUE(r.deadlocked);
    EXPECT_GT(r.drain_start, 0);
    EXPECT_LT(r.drain_start, r.cycles);
  }
}

TEST(Telemetry, StallCyclesAgreeAcrossBackends) {
  const stencil::StencilProgram p = stencil::sobel_2d(24, 32);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult ref = run_backend(p, design, SimBackend::kReference);
  const SimResult fast = run_backend(p, design, SimBackend::kFast);
  EXPECT_EQ(ref.filter_stall_cycles, fast.filter_stall_cycles);
  EXPECT_EQ(ref.drain_start, fast.drain_start);
  // During fill the head filters wait on reuse data that has not arrived:
  // some filter must have stalled at least once.
  std::int64_t total = 0;
  for (const std::vector<std::int64_t>& sys : ref.filter_stall_cycles) {
    for (const std::int64_t stalls : sys) total += stalls;
  }
  EXPECT_GT(total, 0);
}

TEST(Telemetry, PublishLandsInRegistry) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 128);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = run_backend(p, design, SimBackend::kFast);
  obs::Registry registry;
  const int violations =
      runtime::publish_sim_telemetry(registry, design, r);
  EXPECT_EQ(violations, 0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("fifo.high_water.A.0", -1), 127);
  EXPECT_EQ(snap.value_of("fifo.depth.A.0", -1), 127);
  EXPECT_EQ(snap.value_of("fifo.high_water.A.1", -1), 1);
  EXPECT_EQ(snap.value_of("fifo.depth_violations", 0), 0);
  EXPECT_EQ(snap.value_of("sim.runs"), 1);
  EXPECT_EQ(snap.value_of("sim.cycles"), r.cycles);
}

/// Same random-stencil recipe as differential_test.cpp: random window over
/// a rectangular (even seeds) or sheared (odd seeds) domain.
stencil::StencilProgram random_program(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  const std::size_t refs = static_cast<std::size_t>(rng.next_in(2, 7));
  std::set<poly::IntVec> offsets;
  while (offsets.size() < refs) {
    offsets.insert({rng.next_in(-2, 2), rng.next_in(-3, 3)});
  }

  std::int64_t lo[2];
  std::int64_t hi[2];
  for (std::size_t d = 0; d < 2; ++d) {
    std::int64_t reach = 0;
    for (const poly::IntVec& f : offsets) {
      reach = std::max(reach, std::max(f[d], -f[d]));
    }
    lo[d] = reach;
    hi[d] = lo[d] + rng.next_in(5, 12);
  }

  const bool skewed = (seed % 2) == 1;
  poly::Domain domain;
  if (skewed) {
    const std::int64_t shear = rng.next_in(1, 2);
    poly::Polyhedron piece(2);
    piece.add(poly::make_constraint({1, 0}, -lo[0]));
    piece.add(poly::make_constraint({-1, 0}, hi[0]));
    piece.add(poly::make_constraint({-shear, 1}, -lo[1]));
    piece.add(poly::make_constraint({shear, -1}, hi[1]));
    domain = poly::Domain(std::move(piece));
  } else {
    domain = poly::Domain::box({lo[0], lo[1]}, {hi[0], hi[1]});
  }

  stencil::StencilProgram p(
      std::string(skewed ? "TEL_SKEW_" : "TEL_RECT_") +
          std::to_string(seed),
      domain);
  p.add_input("A",
              std::vector<poly::IntVec>(offsets.begin(), offsets.end()));
  return p;
}

class RandomTelemetry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTelemetry, HighWaterNeverExceedsDesignedDepth) {
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    const SimResult r = run_backend(p, design, backend);
    expect_high_water_within_depth(p, design, r, /*expect_tight=*/false);
    obs::Registry registry;
    EXPECT_EQ(runtime::publish_sim_telemetry(registry, design, r), 0)
        << p.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTelemetry,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace nup::sim
