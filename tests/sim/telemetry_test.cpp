// Telemetry of a simulation run: per-FIFO high-water marks never exceed
// the designed depths (the paper's Eq. 2 sizing, checked live), the
// fill/steady/drain phase boundaries are ordered, per-filter stall cycles
// agree between the two backends, and publish_sim_telemetry lands it all
// in a metrics registry.

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "obs/metrics.hpp"
#include "runtime/telemetry.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "testing/stencil_gen.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

SimResult run_backend(const stencil::StencilProgram& p,
                      const arch::AcceleratorDesign& design,
                      SimBackend backend) {
  SimOptions options;
  options.backend = backend;
  options.record_outputs = false;
  return simulate(p, design, options);
}

void expect_high_water_within_depth(
    const stencil::StencilProgram& p,
    const arch::AcceleratorDesign& design, const SimResult& r,
    bool expect_tight) {
  ASSERT_FALSE(r.deadlocked) << p.name();
  ASSERT_EQ(r.fifo_max_fill.size(), design.systems.size()) << p.name();
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& ms = design.systems[s];
    ASSERT_EQ(r.fifo_max_fill[s].size(), ms.fifos.size()) << p.name();
    for (std::size_t k = 0; k < ms.fifos.size(); ++k) {
      if (ms.fifos[k].cut) continue;
      EXPECT_LE(r.fifo_max_fill[s][k], ms.fifos[k].depth)
          << p.name() << " " << ms.array << " fifo " << k;
      if (expect_tight) {
        // The sizing is the max reuse distance: a full run touches every
        // reuse pair, so the peak occupancy reaches the designed depth.
        EXPECT_EQ(r.fifo_max_fill[s][k], ms.fifos[k].depth)
            << p.name() << " " << ms.array << " fifo " << k;
      }
    }
  }
}

TEST(Telemetry, DenoiseHighWaterEqualsDesignedDepthBothBackends) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 128);
  const arch::AcceleratorDesign design = arch::build_design(p);
  // 5-point window on 128-wide rows: chain depths {row-1, 1, 1, row-1}.
  ASSERT_EQ(design.systems.size(), 1u);
  ASSERT_EQ(design.systems[0].fifos.size(), 4u);
  EXPECT_EQ(design.systems[0].fifos[0].depth, 127);
  EXPECT_EQ(design.systems[0].fifos[1].depth, 1);
  EXPECT_EQ(design.systems[0].fifos[2].depth, 1);
  EXPECT_EQ(design.systems[0].fifos[3].depth, 127);
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    const SimResult r = run_backend(p, design, backend);
    expect_high_water_within_depth(p, design, r, /*expect_tight=*/true);
  }
}

TEST(Telemetry, PhaseBoundariesAreOrdered) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 48);
  const arch::AcceleratorDesign design = arch::build_design(p);
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    const SimResult r = run_backend(p, design, backend);
    ASSERT_GT(r.kernel_fires, 0);
    // fill = [1, fill_latency], steady = (fill_latency, drain_start],
    // drain = (drain_start, cycles].
    EXPECT_GT(r.fill_latency, 0);
    EXPECT_GT(r.drain_start, r.fill_latency);
    EXPECT_LE(r.drain_start, r.cycles);
  }
}

TEST(Telemetry, DrainBoundaryIsDegenerateOnCompletedRuns) {
  // Every kernel fire consumes a fresh off-chip element at each segment
  // head (same-cycle flow-through: the newest reference's data enters and
  // reaches its port in one cycle), so a completed run streams until the
  // final fire -- drain_start == cycles in both streaming modes. A real
  // drain tail only appears once module latencies stop being idealized.
  const stencil::StencilProgram p = stencil::denoise_2d(32, 48);
  for (const bool exact_streaming : {false, true}) {
    arch::BuildOptions opts;
    opts.exact_streaming = exact_streaming;
    const arch::AcceleratorDesign design = arch::build_design(p, opts);
    for (const SimBackend backend :
         {SimBackend::kReference, SimBackend::kFast}) {
      const SimResult r = run_backend(p, design, backend);
      ASSERT_FALSE(r.deadlocked);
      EXPECT_EQ(r.drain_start, r.cycles);
    }
  }
}

TEST(Telemetry, DeadlockFreezesTheDrainBoundary) {
  // On a wedged run the boundary marks the last cycle data still streamed
  // in: the stall-limit cycles spin past it with nothing entering the
  // chain. First diagnostic to read when a run hangs.
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[3].depth = 1;  // needs 23: wedges mid-run
  SimOptions options;
  options.stall_limit = 500;
  options.validate = false;  // report the wedge instead of throwing
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    options.backend = backend;
    const SimResult r = simulate(p, design, options);
    ASSERT_TRUE(r.deadlocked);
    EXPECT_GT(r.drain_start, 0);
    EXPECT_LT(r.drain_start, r.cycles);
  }
}

TEST(Telemetry, StallCyclesAgreeAcrossBackends) {
  const stencil::StencilProgram p = stencil::sobel_2d(24, 32);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult ref = run_backend(p, design, SimBackend::kReference);
  const SimResult fast = run_backend(p, design, SimBackend::kFast);
  EXPECT_EQ(ref.filter_stall_cycles, fast.filter_stall_cycles);
  EXPECT_EQ(ref.drain_start, fast.drain_start);
  // During fill the head filters wait on reuse data that has not arrived:
  // some filter must have stalled at least once.
  std::int64_t total = 0;
  for (const std::vector<std::int64_t>& sys : ref.filter_stall_cycles) {
    for (const std::int64_t stalls : sys) total += stalls;
  }
  EXPECT_GT(total, 0);
}

TEST(Telemetry, PublishLandsInRegistry) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 128);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = run_backend(p, design, SimBackend::kFast);
  obs::Registry registry;
  const int violations =
      runtime::publish_sim_telemetry(registry, design, r);
  EXPECT_EQ(violations, 0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("fifo.high_water.A.0", -1), 127);
  EXPECT_EQ(snap.value_of("fifo.depth.A.0", -1), 127);
  EXPECT_EQ(snap.value_of("fifo.high_water.A.1", -1), 1);
  EXPECT_EQ(snap.value_of("fifo.depth_violations", 0), 0);
  EXPECT_EQ(snap.value_of("sim.runs"), 1);
  EXPECT_EQ(snap.value_of("sim.cycles"), r.cycles);
}

TEST(Telemetry, FirstViolationNamesTheOffendingFifo) {
  // An honest run scored against a doctored design: publishing must count
  // the violations and fill the out-param with the *first* offender (the
  // frame engine names it in the post-mortem bundle), not the last.
  const stencil::StencilProgram p = stencil::denoise_2d(64, 128);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = run_backend(p, design, SimBackend::kFast);

  arch::AcceleratorDesign doctored = design;
  doctored.systems[0].fifos[0].depth = 120;  // high water is 127
  doctored.systems[0].fifos[3].depth = 100;  // also violated, but second
  obs::Registry registry;
  obs::FifoDetail violation;
  const int violations =
      runtime::publish_sim_telemetry(registry, doctored, r, &violation);
  EXPECT_EQ(violations, 2);
  EXPECT_EQ(violation.array, "A");
  EXPECT_EQ(violation.fifo, 0);
  EXPECT_EQ(violation.depth, 120);
  EXPECT_EQ(violation.high_water, 127);
  EXPECT_FALSE(violation.word_level);
  EXPECT_EQ(registry.snapshot().value_of("fifo.depth_violations", 0), 2);
}

TEST(Telemetry, CleanRunLeavesTheViolationOutParamUntouched) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 48);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const SimResult r = run_backend(p, design, SimBackend::kFast);
  obs::Registry registry;
  obs::FifoDetail violation;
  violation.array = "untouched";
  violation.depth = -7;
  EXPECT_EQ(runtime::publish_sim_telemetry(registry, design, r, &violation),
            0);
  EXPECT_EQ(violation.array, "untouched");
  EXPECT_EQ(violation.depth, -7);
}

// Random stencils come from the shared seeded generator (same stream as
// the legacy in-file recipe, so seeds keep naming the same programs).
using ::nup::testing::random_program;

class RandomTelemetry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTelemetry, HighWaterNeverExceedsDesignedDepth) {
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  for (const SimBackend backend :
       {SimBackend::kReference, SimBackend::kFast}) {
    const SimResult r = run_backend(p, design, backend);
    expect_high_water_within_depth(p, design, r, /*expect_tight=*/false);
    obs::Registry registry;
    EXPECT_EQ(runtime::publish_sim_telemetry(registry, design, r), 0)
        << p.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTelemetry,
                         ::testing::Range<std::uint64_t>(0, 50));

// ---- W-wide datapath properties (Eq. 2 / W rescaling) ------------------

constexpr std::int64_t kWideWidths[] = {2, 4, 8};

/// Eq. 2 / W: a W-wide FIFO stores ceil(depth / W) words of W elements.
/// `depth` itself stays the scalar-element reuse distance of Eq. 2; the
/// rescaling lives in word_depth so the element-level bound (and the
/// scalar telemetry check) is untouched.
TEST_P(RandomTelemetry, WordDepthIsCeilOfScalarDepthOverWidth) {
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign scalar = arch::build_design(p);
  for (const std::int64_t w : kWideWidths) {
    arch::BuildOptions opts;
    opts.datapath_width = w;
    arch::AcceleratorDesign wide;
    try {
      wide = arch::build_design(p, opts);
    } catch (const Error&) {
      continue;  // W wider than every streamed row: legal rejection
    }
    ASSERT_EQ(wide.systems.size(), scalar.systems.size());
    for (std::size_t s = 0; s < wide.systems.size(); ++s) {
      ASSERT_EQ(wide.systems[s].fifos.size(),
                scalar.systems[s].fifos.size());
      for (std::size_t k = 0; k < wide.systems[s].fifos.size(); ++k) {
        const arch::ReuseFifo& f = wide.systems[s].fifos[k];
        EXPECT_EQ(f.depth, scalar.systems[s].fifos[k].depth)
            << p.name() << " W=" << w << " fifo " << k;
        EXPECT_EQ(f.word_depth(w), (f.depth + w - 1) / w)
            << p.name() << " W=" << w << " fifo " << k;
      }
    }
  }
}

/// The measured high-water mark, rescaled to words, never exceeds the
/// Eq. 2 / W word depth -- publish_sim_telemetry counts any excess as a
/// depth violation, and a correct widened design produces none.
TEST_P(RandomTelemetry, HighWaterWordsNeverExceedRescaledDepth) {
  const stencil::StencilProgram p = random_program(GetParam());
  for (const std::int64_t w : kWideWidths) {
    arch::BuildOptions opts;
    opts.datapath_width = w;
    arch::AcceleratorDesign design;
    try {
      design = arch::build_design(p, opts);
    } catch (const Error&) {
      continue;
    }
    for (const SimBackend backend :
         {SimBackend::kReference, SimBackend::kFast}) {
      const SimResult r = run_backend(p, design, backend);
      ASSERT_FALSE(r.deadlocked) << p.name() << " W=" << w;
      obs::Registry registry;
      EXPECT_EQ(runtime::publish_sim_telemetry(registry, design, r), 0)
          << p.name() << " W=" << w;
      const obs::MetricsSnapshot snap = registry.snapshot();
      for (std::size_t s = 0; s < design.systems.size(); ++s) {
        const arch::MemorySystem& ms = design.systems[s];
        for (std::size_t k = 0; k < ms.fifos.size(); ++k) {
          if (ms.fifos[k].cut) continue;
          const std::string suffix =
              ms.array + "." + std::to_string(k);
          const double words =
              snap.value_of("fifo.high_water_words." + suffix, -1);
          const double bound =
              snap.value_of("fifo.word_depth." + suffix, -1);
          EXPECT_GE(words, 0) << p.name() << " " << suffix;
          EXPECT_LE(words, bound)
              << p.name() << " W=" << w << " " << suffix;
        }
      }
    }
  }
}

TEST(Telemetry, PublishReportsWordGaugesAndDatapathCycles) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 128);
  arch::BuildOptions opts;
  opts.datapath_width = 8;
  const arch::AcceleratorDesign design = arch::build_design(p, opts);
  const SimResult r = run_backend(p, design, SimBackend::kFast);
  obs::Registry registry;
  EXPECT_EQ(runtime::publish_sim_telemetry(registry, design, r), 0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  // Chain depths {127, 1, 1, 127} => word depths {16, 1, 1, 16} at W=8.
  EXPECT_EQ(snap.value_of("fifo.word_depth.A.0", -1), 16);
  EXPECT_EQ(snap.value_of("fifo.word_depth.A.1", -1), 1);
  EXPECT_EQ(snap.value_of("fifo.word_depth.A.3", -1), 16);
  EXPECT_LE(snap.value_of("fifo.high_water_words.A.0", -1), 16);
  EXPECT_GT(snap.value_of("fifo.high_water_words.A.0", -1), 0);
  EXPECT_EQ(snap.value_of("sim.datapath_cycles"), r.datapath_cycles);
  EXPECT_LT(r.datapath_cycles, r.cycles);  // W=8 really batched
}

}  // namespace
}  // namespace nup::sim
