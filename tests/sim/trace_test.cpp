#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"

namespace nup::sim {
namespace {

SimResult traced_run(const stencil::StencilProgram& p,
                     std::int64_t trace_cycles,
                     arch::BuildOptions build = {}) {
  SimOptions options;
  options.trace_cycles = trace_cycles;
  return simulate(p, arch::build_design(p, build), options);
}

TEST(Trace, RecordsRequestedWindow) {
  const SimResult r = traced_run(stencil::denoise_2d(16, 20), 25);
  ASSERT_EQ(r.trace.size(), 25u);
  EXPECT_EQ(r.trace.front().cycle, 1);
  EXPECT_EQ(r.trace.back().cycle, 25);
}

TEST(Trace, Table3FillSequence) {
  // Section 3.4.1 / Table 3: the filters stall one after another, from the
  // latest reference (filter n-1) backwards, while the FIFOs between them
  // fill up; the first kernel fire releases all of them.
  arch::BuildOptions exact;
  exact.exact_sizing = true;
  exact.exact_streaming = true;
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  SimOptions options;
  options.trace_cycles = 3 * 20 + 10;
  const SimResult r =
      simulate(p, arch::build_design(p, exact), options);

  // Each filter discards its unused prefix of the stream and then enters a
  // final stall that lasts until the first kernel fire. The start of that
  // final stall is the cycle after its last discard.
  std::vector<std::int64_t> last_discard(5, 0);
  std::int64_t first_fire = -1;
  for (const CycleTrace& t : r.trace) {
    bool fire = false;
    for (std::size_t k = 0; k < t.filters.size(); ++k) {
      if (t.filters[k] == FilterStatus::kDiscard) last_discard[k] = t.cycle;
      fire = fire || t.filters[k] == FilterStatus::kForward;
    }
    if (fire) {
      first_fire = t.cycle;
      break;
    }
  }
  ASSERT_GT(first_fire, 0) << "pipeline never filled in the trace window";
  // The latest reference (filter 4, A[i-1][j]) settles into its stall
  // first, then filter 3 (A[i][j-1]) roughly a row later, and so on
  // backwards -- Table 3's staircase. Unlike Table 3, our trace includes
  // the one-cycle latency per chain stage, which exactly cancels the
  // one-element spacing of the middle filters' stall points, so the
  // middle steps are non-strict.
  EXPECT_LT(last_discard[4], last_discard[3]);
  EXPECT_LE(last_discard[3], last_discard[2]);
  EXPECT_LE(last_discard[2], last_discard[1]);
  EXPECT_LT(last_discard[1], last_discard[0]);
  EXPECT_LT(last_discard[0], first_fire);
  // Filter 4 parks a full row before the next one.
  EXPECT_GT(last_discard[3] - last_discard[4], 10);
}

TEST(Trace, FifosFillMonotonicallyBeforeFirstFire) {
  const SimResult r = traced_run(stencil::denoise_2d(16, 20), 45);
  std::vector<std::int64_t> prev(4, 0);
  for (const CycleTrace& t : r.trace) {
    bool any_forward = false;
    for (FilterStatus s : t.filters) {
      any_forward = any_forward || s == FilterStatus::kForward;
    }
    if (any_forward) break;  // pipeline filled
    for (std::size_t k = 0; k < t.fifo_fill.size(); ++k) {
      EXPECT_GE(t.fifo_fill[k], prev[k]);
      prev[k] = t.fifo_fill[k];
    }
  }
}

TEST(Trace, AllFiltersForwardOnFireCycles) {
  const SimResult r = traced_run(stencil::denoise_2d(16, 20), 60);
  for (const CycleTrace& t : r.trace) {
    std::size_t forwards = 0;
    for (FilterStatus s : t.filters) {
      if (s == FilterStatus::kForward) ++forwards;
    }
    // The kernel consumes all ports simultaneously: either every filter
    // forwards or none does.
    EXPECT_TRUE(forwards == 0 || forwards == t.filters.size());
  }
}

TEST(Trace, StreamPointAdvancesLexicographically) {
  const SimResult r = traced_run(stencil::denoise_2d(16, 20), 30);
  std::string prev;
  for (const CycleTrace& t : r.trace) {
    EXPECT_FALSE(t.stream_point.empty());
    if (!prev.empty()) {
      EXPECT_GE(t.stream_point.size(), 0u);
    }
    prev = t.stream_point;
  }
}

TEST(Trace, ExactStreamingSkipsCorner) {
  // With the exact union input domain, the first streamed element is
  // (0, 1) -- the grid corner (0, 0) is not read by any reference
  // (Example 4), matching Table 3's first row.
  arch::BuildOptions exact;
  exact.exact_sizing = true;
  exact.exact_streaming = true;
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  SimOptions options;
  options.trace_cycles = 1;
  const SimResult r =
      simulate(p, arch::build_design(p, exact), options);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0].stream_point, "(0, 1)");
}

TEST(Trace, HullStreamingStartsAtOrigin) {
  const SimResult r = traced_run(stencil::denoise_2d(16, 20), 1);
  ASSERT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace[0].stream_point, "(0, 0)");
}

TEST(Trace, NoTraceByDefault) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 12);
  const SimResult r = simulate(p, arch::build_design(p), {});
  EXPECT_TRUE(r.trace.empty());
}

}  // namespace
}  // namespace nup::sim
