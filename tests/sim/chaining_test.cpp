#include <gtest/gtest.h>

#include <memory>

#include "arch/builder.hpp"
#include "sim/feed.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

TEST(Feeds, SyntheticFeedMatchesGoldenValues) {
  SyntheticFeed feed(42, 0);
  EXPECT_TRUE(feed.available({3, 4}));
  EXPECT_EQ(feed.read({3, 4}), stencil::synthetic_value(42, 0, {3, 4}));
}

TEST(Feeds, QueueFeedDeliversInOrder) {
  QueueFeed feed;
  feed.push({0, 0}, 1.5);
  feed.push({0, 1}, 2.5);
  EXPECT_TRUE(feed.available({0, 0}));
  EXPECT_FALSE(feed.available({0, 1}));  // not at the front yet
  EXPECT_EQ(feed.read({0, 0}), 1.5);
  EXPECT_TRUE(feed.available({0, 1}));
  EXPECT_EQ(feed.read({0, 1}), 2.5);
  EXPECT_EQ(feed.pending(), 0u);
}

TEST(Feeds, QueueFeedRejectsOutOfOrderRead) {
  QueueFeed feed;
  feed.push({0, 0}, 1.0);
  EXPECT_THROW(feed.read({0, 1}), SimulationError);
}

TEST(Feeds, EmptyQueueFeedUnavailable) {
  QueueFeed feed;
  EXPECT_FALSE(feed.available({0, 0}));
}

/// Fig 13(c): two accelerators chained through a direct data stream, no
/// intermediate block memory. Accelerator 1 smooths the full grid;
/// accelerator 2 consumes exactly the elements accelerator 1 produces.
TEST(Chaining, TwoAcceleratorsStreamDirectly) {
  // Stage 1 produces outputs over iterations [1,14]x[1,18]; stage 2's data
  // hull must coincide with that region, so its iteration domain is the
  // interior [2,13]x[2,17].
  stencil::StencilProgram stage1 = stencil::denoise_2d(16, 20);

  stencil::StencilProgram stage2("STAGE2",
                                 poly::Domain::box({2, 2}, {13, 17}));
  stage2.add_input("B", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  stage2.set_kernel(
      stencil::make_weighted_sum({0.25, 0.25, 0.0, 0.25, 0.25}));

  const arch::AcceleratorDesign design1 = arch::build_design(stage1);
  const arch::AcceleratorDesign design2 = arch::build_design(stage2);

  AcceleratorSim sim1(stage1, design1, {});
  SimOptions opt2;
  opt2.stall_limit = 1'000'000;  // stage 2 legitimately waits on stage 1
  AcceleratorSim sim2(stage2, design2, opt2);

  auto queue = std::make_shared<QueueFeed>();
  sim1.set_output_callback([&](const poly::IntVec& i, double v) {
    queue->push(i, v);
  });
  sim2.set_feed(0, 0, queue);

  std::vector<double> stage2_outputs;
  sim2.set_output_callback([&](const poly::IntVec&, double v) {
    stage2_outputs.push_back(v);
  });

  // Lock-step execution: both accelerators clocked every cycle.
  for (int cycle = 0; cycle < 200000 && !sim2.done(); ++cycle) {
    sim1.step();
    sim2.step();
  }
  ASSERT_TRUE(sim2.done());

  // Golden: stage 1 software outputs feed stage 2's window.
  const stencil::GoldenRun golden1 = stencil::run_golden(stage1, 1);
  // Rebuild stage-1 output as a grid for gathering.
  const std::int64_t cols = 18;
  auto at = [&](std::int64_t i, std::int64_t j) {
    return golden1.outputs[static_cast<std::size_t>((i - 1) * cols +
                                                    (j - 1))];
  };
  std::size_t idx = 0;
  for (std::int64_t i = 2; i <= 13; ++i) {
    for (std::int64_t j = 2; j <= 17; ++j) {
      const double expected = 0.25 * (at(i - 1, j) + at(i, j - 1) +
                                      at(i, j + 1) + at(i + 1, j));
      ASSERT_LT(idx, stage2_outputs.size());
      EXPECT_NEAR(stage2_outputs[idx], expected, 1e-12)
          << "at (" << i << ", " << j << ")";
      ++idx;
    }
  }
  EXPECT_EQ(idx, stage2_outputs.size());
}

TEST(Chaining, BackpressureDoesNotDeadlock) {
  // A slow producer: stage 2 only sees one element every 3 cycles.
  stencil::StencilProgram p("CONSUMER", poly::Domain::box({1, 1}, {8, 8}));
  p.add_input("B", {{-1, 0}, {0, 0}, {1, 0}});
  const arch::AcceleratorDesign design = arch::build_design(p);
  SimOptions options;
  options.stall_limit = 1'000'000;
  AcceleratorSim sim(p, design, options);
  auto queue = std::make_shared<QueueFeed>();
  sim.set_feed(0, 0, queue);

  // Producer emits the hull box [0,9]x[0,8] in lex order, slowly.
  std::vector<poly::IntVec> points;
  p.data_domain_hull(0).for_each(
      [&](const poly::IntVec& h) { points.push_back(h); });
  std::size_t produced = 0;
  for (int cycle = 0; cycle < 3000 && !sim.done(); ++cycle) {
    if (cycle % 3 == 0 && produced < points.size()) {
      queue->push(points[produced],
                  stencil::synthetic_value(1, 0, points[produced]));
      ++produced;
    }
    sim.step();
  }
  EXPECT_TRUE(sim.done());
}

}  // namespace
}  // namespace nup::sim
