// Differential fuzz harness for the W-wide vectorized fast backend. The
// sweep drives >= 400 random stencils (rect, sheared, triangular; ragged
// inner widths including rows narrower than W and rows with width % W != 0)
// through W in {1, 4, 8}, each checked three ways:
//
//   1. run_differential: the wide fast backend against the scalar
//      reference, cycle-exact at every batch boundary;
//   2. fast-W against fast-1 (options.vectorize = false): every SimResult
//      field except datapath_cycles must be bit-identical;
//   3. datapath_cycles bounds: ceil(cycles / W) <= datapath_cycles <=
//      cycles, with real batching (strict inequality) on vector-friendly
//      domains.
//
// The same binary passes with AVX2 (-march=native) and with the scalar
// fallback (-DNUP_DISABLE_AVX2); CI runs both, plus ASan/UBSan.

#include "sim/fast.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "arch/builder.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "testing/stencil_gen.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

constexpr std::int64_t kWidths[] = {1, 4, 8};

arch::AcceleratorDesign widened_design(const stencil::StencilProgram& p,
                                       std::int64_t width) {
  arch::BuildOptions options;
  options.datapath_width = width;
  return arch::build_design(p, options);
}

/// Longest streamed row of the program's first input hull (the quantity
/// widen_design validates W against).
std::int64_t longest_row(const stencil::StencilProgram& p) {
  const poly::Domain hull = p.data_domain_hull(0);
  poly::IntVec lo;
  poly::IntVec hi;
  EXPECT_TRUE(hull.as_single_box(&lo, &hi));
  return hi.back() - lo.back() + 1;
}

SimResult run_fast(const stencil::StencilProgram& p,
                   const arch::AcceleratorDesign& design, bool vectorize) {
  SimOptions options;
  options.backend = SimBackend::kFast;
  options.vectorize = vectorize;
  return simulate(p, design, options);
}

void expect_results_match(const SimResult& scalar, const SimResult& wide,
                          const std::string& label) {
  EXPECT_EQ(scalar.cycles, wide.cycles) << label;
  EXPECT_EQ(scalar.kernel_fires, wide.kernel_fires) << label;
  EXPECT_EQ(scalar.fill_latency, wide.fill_latency) << label;
  EXPECT_EQ(scalar.steady_ii, wide.steady_ii) << label;
  EXPECT_EQ(scalar.deadlocked, wide.deadlocked) << label;
  EXPECT_EQ(scalar.deadlock_detail, wide.deadlock_detail) << label;
  EXPECT_EQ(scalar.fifo_max_fill, wide.fifo_max_fill) << label;
  EXPECT_EQ(scalar.filter_stall_cycles, wide.filter_stall_cycles) << label;
  EXPECT_EQ(scalar.drain_start, wide.drain_start) << label;
  ASSERT_EQ(scalar.outputs.size(), wide.outputs.size()) << label;
  // Bit-identity, not closeness: the wide kernel path is only legal when
  // it reproduces the scalar kernel exactly.
  for (std::size_t i = 0; i < scalar.outputs.size(); ++i) {
    ASSERT_EQ(scalar.outputs[i], wide.outputs[i])
        << label << " output " << i;
  }
}

/// The full three-way check of one (program, W) point; returns false when
/// the width was (correctly) rejected for this program.
bool check_program_at_width(const stencil::StencilProgram& p,
                            std::int64_t width) {
  arch::AcceleratorDesign design;
  try {
    design = widened_design(p, width);
  } catch (const Error&) {
    // widen_design rejects widths no streamed row can ever fill -- and
    // only those.
    EXPECT_LT(longest_row(p), width)
        << p.name() << ": W=" << width
        << " rejected although a row could fill a vector";
    return false;
  }
  EXPECT_GE(longest_row(p), width) << p.name();
  const std::string label = p.name() + " W=" + std::to_string(width);

  const DifferentialReport report = run_differential(p, design);
  EXPECT_TRUE(report.agreed) << label << ": " << report.divergence;
  EXPECT_EQ(report.width, width) << label;

  const SimResult scalar = run_fast(p, design, /*vectorize=*/false);
  const SimResult wide = run_fast(p, design, /*vectorize=*/true);
  expect_results_match(scalar, wide, label);
  EXPECT_EQ(scalar.datapath_cycles, scalar.cycles) << label;
  EXPECT_LE(wide.datapath_cycles, wide.cycles) << label;
  EXPECT_GE(wide.datapath_cycles, (wide.cycles + width - 1) / width)
      << label;
  return true;
}

class VectorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// 144 parameter points x 3 shape families = 432 random stencils, each at
// W in {1, 4, 8}: the >= 400-stencil sweep of the acceptance criteria.
TEST_P(VectorFuzz, WideBackendMatchesScalarAndReference) {
  const std::uint64_t seed = GetParam();

  // Family 1: the legacy recipe (even seed rect, odd sheared), alternating
  // between the equal-weight default kernel and random weights.
  ::nup::testing::StencilGenOptions legacy;
  legacy.random_weights = (seed % 4) >= 2;
  check_program_at_width(::nup::testing::random_program(seed, legacy), 1);
  for (std::int64_t w : {4, 8}) {
    check_program_at_width(::nup::testing::random_program(seed, legacy), w);
  }

  // Family 2: triangular domains -- inner rows ramp 1..extent+1, so every
  // remainder class width % W != 0 and rows narrower than W occur inside
  // one run.
  ::nup::testing::StencilGenOptions tri;
  tri.shape = ::nup::testing::StencilGenOptions::Shape::kTriangular;
  tri.random_weights = (seed % 2) == 1;
  for (std::int64_t w : kWidths) {
    check_program_at_width(::nup::testing::random_program(seed, tri), w);
  }

  // Family 3: ragged narrow boxes (extents 1..9): domains narrower than
  // W=8 (and sometimes W=4) exercise the rejected-width property and the
  // never-batches scalar path right at the boundary.
  ::nup::testing::StencilGenOptions narrow;
  narrow.shape = ::nup::testing::StencilGenOptions::Shape::kRect;
  narrow.min_extent = 1;
  narrow.max_extent = 9;
  narrow.random_weights = (seed % 2) == 0;
  for (std::int64_t w : kWidths) {
    check_program_at_width(::nup::testing::random_program(seed, narrow), w);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorFuzz,
                         ::testing::Range<std::uint64_t>(0, 144));

// ---- targeted cases beyond the sweep ----------------------------------

TEST(VectorFuzzGallery, AllGalleryBenchmarksAtEveryWidth) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(24, 32),  stencil::rician_2d(24, 32),
      stencil::sobel_2d(24, 32),    stencil::bicubic_2d(12, 48),
      stencil::jacobi_2d(24, 32),   stencil::heat_3d(8, 10, 12),
      stencil::triangular_demo(18), stencil::skewed_demo(12, 20)};
  for (const stencil::StencilProgram& p : programs) {
    for (std::int64_t w : kWidths) {
      check_program_at_width(p, w);
    }
  }
}

TEST(VectorFuzzGallery, WideStepsActuallyBatchOnDenoise) {
  // Guards against the wide path silently degenerating to scalar: DENOISE
  // rows are long and rectangular, so steady-state steps retire W cells
  // (row boundaries and the fill phase fall back to scalar, which is why
  // the bar is 3x rather than the asymptotic 8x).
  const stencil::StencilProgram p = stencil::denoise_2d(96, 128);
  const arch::AcceleratorDesign design = widened_design(p, 8);
  const SimResult wide = run_fast(p, design, /*vectorize=*/true);
  EXPECT_FALSE(wide.deadlocked);
  EXPECT_LT(wide.datapath_cycles, wide.cycles / 3)
      << "W=8 retired fewer than 3 cells per machine cycle";
}

TEST(VectorFuzzGallery, WideOutputsMatchGolden) {
  for (std::int64_t w : kWidths) {
    const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
    const SimResult r = run_fast(p, widened_design(p, w), true);
    const stencil::GoldenRun golden = stencil::run_golden(p, 1);
    ASSERT_EQ(r.outputs.size(), golden.outputs.size());
    for (std::size_t i = 0; i < r.outputs.size(); ++i) {
      ASSERT_EQ(r.outputs[i], golden.outputs[i]) << "W=" << w;
    }
  }
}

TEST(VectorFuzzGallery, TimedFeedForcesScalarPathButAgrees) {
  // A QueueFeed is not time-invariant: the wide backend must fall back to
  // scalar stepping around it and still match the reference exactly.
  const stencil::StencilProgram p = stencil::sobel_2d(12, 16);
  const arch::AcceleratorDesign design = widened_design(p, 4);

  const auto preloaded_feed = [&]() {
    auto feed = std::make_shared<QueueFeed>();
    design.systems[0].input_domain.for_each([&](const poly::IntVec& h) {
      feed->push(h, stencil::synthetic_value(7, 0, h));
    });
    return feed;
  };

  SimOptions options;
  AcceleratorSim ref(p, design, options);
  ref.set_feed(0, 0, preloaded_feed());
  FastSim fast(p, design, options);
  fast.set_feed(0, 0, preloaded_feed());
  const SimResult a = ref.run();
  const SimResult b = fast.run();
  EXPECT_FALSE(a.deadlocked);
  expect_results_match(a, b, "sobel queue-feed W=4");
  // Every step stayed scalar: a queue feed's availability may change
  // between micro-cycles, so batching would be unsound.
  EXPECT_EQ(b.datapath_cycles, b.cycles);
}

TEST(VectorFuzzGallery, WidthWiderThanAnyRowIsRejected) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 16);
  EXPECT_THROW(widened_design(p, 32), Error);   // rows are ~17 wide
  EXPECT_THROW(widened_design(p, 0), Error);    // below range
  EXPECT_THROW(widened_design(p, arch::kMaxDatapathWidth + 1), Error);
  EXPECT_NO_THROW(widened_design(p, 16));
}

}  // namespace
}  // namespace nup::sim
