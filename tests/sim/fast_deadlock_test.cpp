// The fast backend must reproduce the reference's deadlock behaviour under
// the condition violations of DESIGN.md section 7.6: same verdict, same
// diagnostic classification (the describe_stall string format is shared),
// at the same cycle -- so the safety guarantees hold on the fast lane too.

#include "sim/fast.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "arch/builder.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

SimOptions fast_deadlock_options(SimBackend backend = SimBackend::kFast) {
  SimOptions options;
  options.backend = backend;
  options.stall_limit = 3000;
  return options;
}

/// Runs the broken design on both backends and requires the same outcome
/// class (clean, deadlocked, or validation error) with matching detail.
void expect_same_verdict(const stencil::StencilProgram& p,
                         const arch::AcceleratorDesign& design) {
  SimResult ref;
  SimResult fast;
  bool ref_threw = false;
  bool fast_threw = false;
  try {
    ref = simulate(p, design, fast_deadlock_options(SimBackend::kReference));
  } catch (const SimulationError&) {
    ref_threw = true;
  }
  try {
    fast = simulate(p, design, fast_deadlock_options(SimBackend::kFast));
  } catch (const SimulationError&) {
    fast_threw = true;
  }
  ASSERT_EQ(ref_threw, fast_threw);
  if (ref_threw) return;
  EXPECT_EQ(ref.deadlocked, fast.deadlocked);
  EXPECT_EQ(ref.cycles, fast.cycles);
  EXPECT_EQ(ref.kernel_fires, fast.kernel_fires);
  EXPECT_EQ(ref.deadlock_detail, fast.deadlock_detail);
}

TEST(FastDeadlock, UndersizedFifoSameVerdict) {
  // Violating condition 2 (Eq. 2): FIFO below the maximum reuse distance.
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth -= 1;
  expect_same_verdict(p, design);
}

TEST(FastDeadlock, BadlyUndersizedFifoSameVerdict) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[3].depth = 1;  // needs 23
  expect_same_verdict(p, design);
}

TEST(FastDeadlock, ShuffledFilterOrderSameVerdict) {
  // Violating condition 1: offsets no longer descending lexicographically.
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  arch::MemorySystem& sys = design.systems[0];
  std::swap(sys.ordered_offsets[0], sys.ordered_offsets[4]);
  std::swap(sys.ref_order[0], sys.ref_order[4]);
  expect_same_verdict(p, design);
}

TEST(FastDeadlock, FastBackendDeadlocksOnUndersizedFifo) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[3].depth = 1;
  SimResult r;
  bool corrupted = false;
  try {
    r = simulate(p, design, fast_deadlock_options());
  } catch (const SimulationError&) {
    corrupted = true;
  }
  EXPECT_TRUE(corrupted || r.deadlocked);
}

TEST(FastDeadlock, ReportNamesTheStall) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth = 2;
  const SimResult r = simulate(p, design, fast_deadlock_options());
  if (r.deadlocked) {
    EXPECT_NE(r.deadlock_detail.find("fifo_fill"), std::string::npos);
    EXPECT_NE(r.deadlock_detail.find("array A"), std::string::npos);
  }
}

TEST(FastDeadlock, DifferentialCheckerCoversBrokenDesigns) {
  // The lockstep checker itself must agree even when the design deadlocks:
  // both backends stall on the same cycles with the same occupancies.
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth = 2;
  SimOptions options;
  options.stall_limit = 2000;
  const DifferentialReport report = run_differential(p, design, options);
  EXPECT_TRUE(report.agreed) << report.divergence;
  EXPECT_TRUE(report.reference.deadlocked);
  EXPECT_TRUE(report.fast.deadlocked);
}

TEST(FastDeadlock, CorrectDesignsNeverDeadlock) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(12, 16), stencil::sobel_2d(12, 16),
      stencil::bicubic_2d(8, 24), stencil::heat_3d(6, 8, 10),
      stencil::triangular_demo(14), stencil::skewed_demo(10, 16)};
  SimOptions options;
  options.backend = SimBackend::kFast;
  for (const stencil::StencilProgram& p : programs) {
    const SimResult r = simulate(p, arch::build_design(p), options);
    EXPECT_FALSE(r.deadlocked) << p.name() << ": " << r.deadlock_detail;
  }
}

// ---- the same condition violations on the W-wide datapath -------------
//
// Batching must never mask a wedge: a W-wide FastSim on a broken design
// has to reach the identical verdict, deadlock_detail, cycle count and
// per-filter stall tally as W=1 (the scalar path detects the stall, so
// wide steps simply stop retiring once the chain wedges).

/// Builds the design at each width, applies the same mutation, and
/// requires the W>1 fast runs to match the W=1 fast run field for field.
void expect_same_verdict_across_widths(
    const stencil::StencilProgram& p,
    const std::function<void(arch::AcceleratorDesign&)>& mutate) {
  SimResult base;
  bool base_threw = false;
  for (const std::int64_t w : {std::int64_t{1}, std::int64_t{4},
                               std::int64_t{8}}) {
    arch::BuildOptions opts;
    opts.datapath_width = w;
    arch::AcceleratorDesign design = arch::build_design(p, opts);
    mutate(design);
    SimResult r;
    bool threw = false;
    try {
      r = simulate(p, design, fast_deadlock_options());
    } catch (const SimulationError&) {
      threw = true;
    }
    if (w == 1) {
      base = r;
      base_threw = threw;
      continue;
    }
    ASSERT_EQ(threw, base_threw) << p.name() << " W=" << w;
    if (threw) continue;
    EXPECT_EQ(r.deadlocked, base.deadlocked) << p.name() << " W=" << w;
    EXPECT_EQ(r.cycles, base.cycles) << p.name() << " W=" << w;
    EXPECT_EQ(r.kernel_fires, base.kernel_fires) << p.name() << " W=" << w;
    EXPECT_EQ(r.deadlock_detail, base.deadlock_detail)
        << p.name() << " W=" << w;
    EXPECT_EQ(r.filter_stall_cycles, base.filter_stall_cycles)
        << p.name() << " W=" << w;
  }
}

TEST(FastDeadlock, UndersizedFifoSameVerdictAtEveryWidth) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  expect_same_verdict_across_widths(p, [](arch::AcceleratorDesign& d) {
    d.systems[0].fifos[0].depth -= 1;
  });
}

TEST(FastDeadlock, BadlyUndersizedFifoSameVerdictAtEveryWidth) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  expect_same_verdict_across_widths(p, [](arch::AcceleratorDesign& d) {
    d.systems[0].fifos[3].depth = 1;  // needs 23
  });
}

TEST(FastDeadlock, ShuffledFilterOrderSameVerdictAtEveryWidth) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  expect_same_verdict_across_widths(p, [](arch::AcceleratorDesign& d) {
    arch::MemorySystem& sys = d.systems[0];
    std::swap(sys.ordered_offsets[0], sys.ordered_offsets[4]);
    std::swap(sys.ref_order[0], sys.ref_order[4]);
  });
}

TEST(FastDeadlock, IntactDesignSameStallsAtEveryWidth) {
  // Control case: no mutation. Stall accounting (fill-phase waits) must
  // still be cycle-identical between the scalar and batched machines.
  const stencil::StencilProgram p = stencil::sobel_2d(16, 20);
  expect_same_verdict_across_widths(p, [](arch::AcceleratorDesign&) {});
}

TEST(FastDeadlock, WideDifferentialCheckerCoversBrokenDesigns) {
  // The lockstep checker holds on wedged W>1 designs too: the wide run
  // degrades to scalar stepping around the stall and tracks the
  // reference cycle for cycle.
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::BuildOptions opts;
  opts.datapath_width = 8;
  arch::AcceleratorDesign design = arch::build_design(p, opts);
  design.systems[0].fifos[0].depth = 2;
  SimOptions options;
  options.stall_limit = 2000;
  const DifferentialReport report = run_differential(p, design, options);
  EXPECT_TRUE(report.agreed) << report.divergence;
  EXPECT_EQ(report.width, 8);
  EXPECT_TRUE(report.reference.deadlocked);
  EXPECT_TRUE(report.fast.deadlocked);
}

TEST(FastDeadlock, MaxCyclesGuardStopsRunaways) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  SimOptions options;
  options.backend = SimBackend::kFast;
  options.max_cycles = 10;  // far too few to finish
  const SimResult r = simulate(p, arch::build_design(p), options);
  EXPECT_EQ(r.cycles, 10);
  EXPECT_LT(r.kernel_fires, p.iteration().count());
}

}  // namespace
}  // namespace nup::sim
