// The fast backend must reproduce the reference's deadlock behaviour under
// the condition violations of DESIGN.md section 7.6: same verdict, same
// diagnostic classification (the describe_stall string format is shared),
// at the same cycle -- so the safety guarantees hold on the fast lane too.

#include "sim/fast.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/builder.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

SimOptions fast_deadlock_options(SimBackend backend = SimBackend::kFast) {
  SimOptions options;
  options.backend = backend;
  options.stall_limit = 3000;
  return options;
}

/// Runs the broken design on both backends and requires the same outcome
/// class (clean, deadlocked, or validation error) with matching detail.
void expect_same_verdict(const stencil::StencilProgram& p,
                         const arch::AcceleratorDesign& design) {
  SimResult ref;
  SimResult fast;
  bool ref_threw = false;
  bool fast_threw = false;
  try {
    ref = simulate(p, design, fast_deadlock_options(SimBackend::kReference));
  } catch (const SimulationError&) {
    ref_threw = true;
  }
  try {
    fast = simulate(p, design, fast_deadlock_options(SimBackend::kFast));
  } catch (const SimulationError&) {
    fast_threw = true;
  }
  ASSERT_EQ(ref_threw, fast_threw);
  if (ref_threw) return;
  EXPECT_EQ(ref.deadlocked, fast.deadlocked);
  EXPECT_EQ(ref.cycles, fast.cycles);
  EXPECT_EQ(ref.kernel_fires, fast.kernel_fires);
  EXPECT_EQ(ref.deadlock_detail, fast.deadlock_detail);
}

TEST(FastDeadlock, UndersizedFifoSameVerdict) {
  // Violating condition 2 (Eq. 2): FIFO below the maximum reuse distance.
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth -= 1;
  expect_same_verdict(p, design);
}

TEST(FastDeadlock, BadlyUndersizedFifoSameVerdict) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[3].depth = 1;  // needs 23
  expect_same_verdict(p, design);
}

TEST(FastDeadlock, ShuffledFilterOrderSameVerdict) {
  // Violating condition 1: offsets no longer descending lexicographically.
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  arch::MemorySystem& sys = design.systems[0];
  std::swap(sys.ordered_offsets[0], sys.ordered_offsets[4]);
  std::swap(sys.ref_order[0], sys.ref_order[4]);
  expect_same_verdict(p, design);
}

TEST(FastDeadlock, FastBackendDeadlocksOnUndersizedFifo) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[3].depth = 1;
  SimResult r;
  bool corrupted = false;
  try {
    r = simulate(p, design, fast_deadlock_options());
  } catch (const SimulationError&) {
    corrupted = true;
  }
  EXPECT_TRUE(corrupted || r.deadlocked);
}

TEST(FastDeadlock, ReportNamesTheStall) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth = 2;
  const SimResult r = simulate(p, design, fast_deadlock_options());
  if (r.deadlocked) {
    EXPECT_NE(r.deadlock_detail.find("fifo_fill"), std::string::npos);
    EXPECT_NE(r.deadlock_detail.find("array A"), std::string::npos);
  }
}

TEST(FastDeadlock, DifferentialCheckerCoversBrokenDesigns) {
  // The lockstep checker itself must agree even when the design deadlocks:
  // both backends stall on the same cycles with the same occupancies.
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth = 2;
  SimOptions options;
  options.stall_limit = 2000;
  const DifferentialReport report = run_differential(p, design, options);
  EXPECT_TRUE(report.agreed) << report.divergence;
  EXPECT_TRUE(report.reference.deadlocked);
  EXPECT_TRUE(report.fast.deadlocked);
}

TEST(FastDeadlock, CorrectDesignsNeverDeadlock) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(12, 16), stencil::sobel_2d(12, 16),
      stencil::bicubic_2d(8, 24), stencil::heat_3d(6, 8, 10),
      stencil::triangular_demo(14), stencil::skewed_demo(10, 16)};
  SimOptions options;
  options.backend = SimBackend::kFast;
  for (const stencil::StencilProgram& p : programs) {
    const SimResult r = simulate(p, arch::build_design(p), options);
    EXPECT_FALSE(r.deadlocked) << p.name() << ": " << r.deadlock_detail;
  }
}

TEST(FastDeadlock, MaxCyclesGuardStopsRunaways) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  SimOptions options;
  options.backend = SimBackend::kFast;
  options.max_cycles = 10;  // far too few to finish
  const SimResult r = simulate(p, arch::build_design(p), options);
  EXPECT_EQ(r.cycles, 10);
  EXPECT_LT(r.kernel_fires, p.iteration().count());
}

}  // namespace
}  // namespace nup::sim
