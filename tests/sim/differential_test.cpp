// Differential cross-validation of the two simulator backends: the
// compiled fast lane (src/sim/fast.hpp) must reproduce the reference
// semantics cycle for cycle -- same fire/stall decisions, same FIFO
// occupancies, same kernel fires, same deadlock verdicts, same outputs --
// on every gallery benchmark and on hundreds of randomized stencils with
// random window shapes over rectangular and skewed domains.

#include "sim/fast.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "poly/affine.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "testing/stencil_gen.hpp"

namespace nup::sim {
namespace {

void expect_identical(const stencil::StencilProgram& p,
                      const arch::AcceleratorDesign& design,
                      SimOptions options = {}) {
  const DifferentialReport report = run_differential(p, design, options);
  EXPECT_TRUE(report.agreed) << p.name() << ": " << report.divergence;
}

void expect_identical(const stencil::StencilProgram& p) {
  expect_identical(p, arch::build_design(p));
}

// ---- gallery benchmarks ------------------------------------------------

TEST(Differential, AllSixGalleryBenchmarks) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(24, 32),  stencil::rician_2d(24, 32),
      stencil::sobel_2d(24, 32),    stencil::bicubic_2d(12, 48),
      stencil::denoise_3d(8, 10, 12),
      stencil::segmentation_3d(8, 10, 12)};
  for (const stencil::StencilProgram& p : programs) {
    expect_identical(p);
  }
}

TEST(Differential, NonRectangularDomains) {
  expect_identical(stencil::triangular_demo(20));
  expect_identical(stencil::skewed_demo(16, 24));
}

TEST(Differential, ExactSizedSkewedGrid) {
  const stencil::StencilProgram p = stencil::skewed_demo(16, 24);
  arch::BuildOptions options;
  options.exact_sizing = true;
  options.exact_streaming = true;
  expect_identical(p, arch::build_design(p, options));
}

TEST(Differential, FourDimensionalLattice) {
  expect_identical(stencil::lattice_4d(4, 5, 5, 6));
}

TEST(Differential, MultiArrayProgram) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {14, 18}));
  p.add_input("A", {{-1, 0}, {0, 0}, {1, 0}});
  p.add_input("W", {{0, -1}, {0, 1}});
  p.set_kernel(stencil::make_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2}));
  expect_identical(p);
}

TEST(Differential, BandwidthTradedDesigns) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  for (std::size_t cuts = 1; cuts < 4; ++cuts) {
    arch::AcceleratorDesign design = arch::build_design(p);
    design.systems[0] = arch::apply_tradeoff(design.systems[0], cuts);
    expect_identical(p, design);
  }
}

TEST(Differential, TraceWindowsMatchToo) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  SimOptions options;
  options.trace_cycles = 70;
  SimOptions fast_options = options;
  fast_options.backend = SimBackend::kFast;
  const SimResult ref = simulate(p, design, options);
  const SimResult fast = simulate(p, design, fast_options);
  ASSERT_EQ(ref.trace.size(), fast.trace.size());
  for (std::size_t c = 0; c < ref.trace.size(); ++c) {
    EXPECT_EQ(ref.trace[c].cycle, fast.trace[c].cycle);
    EXPECT_EQ(ref.trace[c].stream_point, fast.trace[c].stream_point)
        << "cycle " << c + 1;
    EXPECT_EQ(ref.trace[c].filters, fast.trace[c].filters)
        << "cycle " << c + 1;
    EXPECT_EQ(ref.trace[c].fifo_fill, fast.trace[c].fifo_fill)
        << "cycle " << c + 1;
  }
}

TEST(Differential, FastBackendMatchesGolden) {
  // Not only backend-vs-backend: the fast lane also reproduces the golden
  // software stencil bit for bit through the simulate() dispatcher.
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  SimOptions options;
  options.backend = SimBackend::kFast;
  const SimResult r = simulate(p, arch::build_design(p), options);
  const stencil::GoldenRun golden = stencil::run_golden(p, options.seed);
  ASSERT_EQ(r.outputs.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(r.outputs[i], golden.outputs[i]) << "output " << i;
  }
}

// ---- randomized stencils ----------------------------------------------

// Random stencils come from the shared generator (tests/testing/
// stencil_gen.hpp): the legacy recipe, 2-7 reference windows over small
// rectangular (even seeds) or sheared (odd seeds) iteration domains.
using ::nup::testing::random_program;

class RandomDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDifferential, BackendsAgreeCycleForCycle) {
  const stencil::StencilProgram p = random_program(GetParam());
  expect_identical(p);
}

TEST_P(RandomDifferential, BackendsAgreeWithExactStreaming) {
  // Exact union-domain streaming exercises the general (non-box) row
  // programs of the fast backend.
  const stencil::StencilProgram p = random_program(GetParam());
  arch::BuildOptions options;
  options.exact_sizing = true;
  options.exact_streaming = true;
  expect_identical(p, arch::build_design(p, options));
}

// 200 seeds x 2 differential runs each: the randomized contract of
// acceptance criterion 3.
INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferential,
                         ::testing::Range<std::uint64_t>(0, 200));

}  // namespace
}  // namespace nup::sim
