#include "sim/pipeline.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

/// Stage that smooths a grid; its iteration domain is chosen so stage k+1
/// can consume it directly.
stencil::StencilProgram stage_program(const std::string& name,
                                      std::int64_t lo, std::int64_t rows,
                                      std::int64_t cols,
                                      const std::string& array) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input(array, {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel(stencil::make_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2}));
  return p;
}

TEST(Pipeline, TwoStagesCompleteAndCount) {
  Pipeline pipeline;
  pipeline.add_stage(stage_program("S1", 1, 20, 24, "A"));
  pipeline.add_stage(stage_program("S2", 2, 20, 24, "B"));
  const Pipeline::Result r = pipeline.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.stages.back().outputs, 16 * 20);
  EXPECT_EQ(static_cast<std::int64_t>(r.outputs.size()), 16 * 20);
}

TEST(Pipeline, WireStaysTiny) {
  // The Fig 13c claim: direct forwarding needs a FIFO of a few elements,
  // not a frame buffer.
  Pipeline pipeline;
  pipeline.add_stage(stage_program("S1", 1, 20, 24, "A"));
  pipeline.add_stage(stage_program("S2", 2, 20, 24, "B"));
  const Pipeline::Result r = pipeline.run();
  ASSERT_TRUE(r.completed);
  EXPECT_LE(r.stages[1].max_wire_fill, 4);
}

TEST(Pipeline, ThreeStageChain) {
  Pipeline pipeline;
  pipeline.add_stage(stage_program("S1", 1, 24, 24, "A"));
  pipeline.add_stage(stage_program("S2", 2, 24, 24, "B"));
  pipeline.add_stage(stage_program("S3", 3, 24, 24, "C"));
  const Pipeline::Result r = pipeline.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.stages.back().outputs, 18 * 18);
}

TEST(Pipeline, OutputsMatchComposedGolden) {
  Pipeline pipeline;
  const stencil::StencilProgram s1 = stage_program("S1", 1, 14, 16, "A");
  const stencil::StencilProgram s2 = stage_program("S2", 2, 14, 16, "B");
  pipeline.add_stage(s1);
  pipeline.add_stage(s2);
  const Pipeline::Result r = pipeline.run();
  ASSERT_TRUE(r.completed);

  // Compose in software: stage-1 golden, then a manual stage-2 gather.
  const stencil::GoldenRun g1 = stencil::run_golden(s1, 1);
  const std::int64_t cols = 14;  // stage-1 iteration row length
  auto at = [&](std::int64_t i, std::int64_t j) {
    return g1.outputs[static_cast<std::size_t>((i - 1) * cols + (j - 1))];
  };
  std::size_t idx = 0;
  for (std::int64_t i = 2; i <= 11; ++i) {
    for (std::int64_t j = 2; j <= 13; ++j) {
      const double expected = 0.2 * (at(i - 1, j) + at(i, j - 1) +
                                     at(i, j) + at(i, j + 1) +
                                     at(i + 1, j));
      ASSERT_LT(idx, r.outputs.size());
      EXPECT_NEAR(r.outputs[idx], expected, 1e-12);
      ++idx;
    }
  }
  EXPECT_EQ(idx, r.outputs.size());
}

TEST(Pipeline, RejectsIncompatibleStages) {
  Pipeline pipeline;
  pipeline.add_stage(stage_program("S1", 1, 20, 24, "A"));
  // Mismatched grid: the consumer would expect a different stream.
  EXPECT_THROW(pipeline.add_stage(stage_program("S2", 2, 18, 24, "B")),
               Error);
}

TEST(Pipeline, RejectsMultiArrayDownstream) {
  Pipeline pipeline;
  pipeline.add_stage(stage_program("S1", 1, 12, 12, "A"));
  stencil::StencilProgram bad("BAD", poly::Domain::box({2, 2}, {9, 9}));
  bad.add_input("B", {{0, 0}});
  bad.add_input("C", {{0, 0}});
  EXPECT_THROW(pipeline.add_stage(bad), Error);
}

TEST(Pipeline, EmptyPipelineThrows) {
  Pipeline pipeline;
  EXPECT_THROW(pipeline.run(), Error);
}

TEST(Pipeline, ThroughputApproachesOneOutputPerCycle) {
  Pipeline pipeline;
  pipeline.add_stage(stage_program("S1", 1, 40, 64, "A"));
  pipeline.add_stage(stage_program("S2", 2, 40, 64, "B"));
  const Pipeline::Result r = pipeline.run();
  ASSERT_TRUE(r.completed);
  // Total cycles ~ stage-1 stream length + stage-2 drain; well under 2x
  // the naive serial execution.
  EXPECT_LT(r.cycles, 2 * 40 * 64);
}

}  // namespace
}  // namespace nup::sim
