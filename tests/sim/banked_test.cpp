#include "sim/banked.hpp"

#include <gtest/gtest.h>

#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "sim/simulator.hpp"
#include "arch/builder.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"

namespace nup::sim {
namespace {

TEST(BankedSim, GmpDenoiseMatchesGolden) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const baseline::UniformPartition part = baseline::gmp_partition(p, 0);
  const BankedSimResult r = simulate_banked(p, part);
  ASSERT_FALSE(r.bank_conflict) << r.conflict_detail;
  ASSERT_TRUE(r.completed);
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  ASSERT_EQ(r.values.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(r.values[i], golden.outputs[i]);
  }
}

TEST(BankedSim, CyclicPartitionAlsoExecutes) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 26);
  const baseline::UniformPartition part =
      baseline::cyclic_partition(p, 0);
  const BankedSimResult r = simulate_banked(p, part);
  EXPECT_FALSE(r.bank_conflict) << r.conflict_detail;
  EXPECT_TRUE(r.completed);
}

TEST(BankedSim, AllPaperBenchmarksExecuteUnderGmp) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(16, 20), stencil::rician_2d(16, 20),
      stencil::sobel_2d(16, 20),   stencil::bicubic_2d(10, 24),
      stencil::denoise_3d(6, 8, 10),
      stencil::segmentation_3d(6, 8, 10)};
  for (const stencil::StencilProgram& p : programs) {
    const baseline::UniformPartition part = baseline::gmp_partition(p, 0);
    const BankedSimResult r = simulate_banked(p, part);
    EXPECT_FALSE(r.bank_conflict) << p.name() << ": " << r.conflict_detail;
    EXPECT_TRUE(r.completed) << p.name();
    const stencil::GoldenRun golden = stencil::run_golden(p, 1);
    ASSERT_EQ(r.values.size(), golden.outputs.size()) << p.name();
    EXPECT_EQ(r.values.back(), golden.outputs.back()) << p.name();
  }
}

TEST(BankedSim, DetectsConflictingScheme) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  baseline::UniformPartition bad = baseline::gmp_partition(p, 0);
  bad.scheme = {1, 1};  // A[i-1][j] and A[i][j-1] collide
  const BankedSimResult r = simulate_banked(p, bad);
  EXPECT_TRUE(r.bank_conflict);
  EXPECT_NE(r.conflict_detail.find("bank"), std::string::npos);
}

TEST(BankedSim, DetectsUndersizedBuffer) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  baseline::UniformPartition small = baseline::gmp_partition(p, 0);
  small.total_size = 10;  // far below the window span
  const BankedSimResult r = simulate_banked(p, small);
  EXPECT_TRUE(r.bank_conflict);
  EXPECT_NE(r.conflict_detail.find("evicted"), std::string::npos);
}

TEST(BankedSim, SteadyStateIsFullyPipelined) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 64);
  const BankedSimResult r =
      simulate_banked(p, baseline::gmp_partition(p, 0));
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.steady_ii, 1.05);
}

TEST(BankedSim, FillLatencyCoversTheWindowSpan) {
  // The uniform design must buffer the whole window span before the first
  // output -- same asymptotics as ours (2 rows for DENOISE).
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const BankedSimResult r =
      simulate_banked(p, baseline::gmp_partition(p, 0));
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.fill_latency, 2 * 20);
  EXPECT_LE(r.fill_latency, 2 * 20 + 4);
}

TEST(BankedSim, BothArchitecturesAgreeOnOutputs) {
  // The paper's two competing designs produce identical data; they differ
  // only in banks and storage.
  const stencil::StencilProgram p = stencil::sobel_2d(14, 18);
  const BankedSimResult uniform =
      simulate_banked(p, baseline::gmp_partition(p, 0));
  const SimResult streaming = simulate(p, arch::build_design(p), {});
  ASSERT_TRUE(uniform.completed);
  ASSERT_FALSE(streaming.deadlocked);
  ASSERT_EQ(uniform.values.size(), streaming.outputs.size());
  for (std::size_t i = 0; i < uniform.values.size(); ++i) {
    ASSERT_EQ(uniform.values[i], streaming.outputs[i]);
  }
}

}  // namespace
}  // namespace nup::sim
