#include <gtest/gtest.h>

#include <algorithm>

#include "arch/builder.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::sim {
namespace {

SimOptions fast_deadlock_options() {
  SimOptions options;
  options.stall_limit = 3000;
  return options;
}

TEST(Deadlock, UndersizedFifoDeadlocksOrCorrupts) {
  // Violating condition 2 (Eq. 2): a FIFO smaller than the maximum reuse
  // distance cannot hold the in-flight window, so the chain wedges.
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth -= 1;
  SimResult r;
  bool corrupted = false;
  try {
    r = simulate(p, design, fast_deadlock_options());
  } catch (const SimulationError&) {
    corrupted = true;
  }
  EXPECT_TRUE(corrupted || r.deadlocked);
}

TEST(Deadlock, BadlyUndersizedFifoDeadlocks) {
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[3].depth = 1;  // needs 23
  SimResult r;
  bool corrupted = false;
  try {
    r = simulate(p, design, fast_deadlock_options());
  } catch (const SimulationError&) {
    corrupted = true;
  }
  EXPECT_TRUE(corrupted || r.deadlocked);
}

TEST(Deadlock, ViolatedOrderingFailsLoudly) {
  // Violating condition 1: mapping a later reference to an earlier filter
  // means the data it needs has already flowed past -- deadlock (or a
  // detected port mismatch, never silent wrong data).
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  arch::MemorySystem& sys = design.systems[0];
  std::swap(sys.ordered_offsets[0], sys.ordered_offsets[4]);
  std::swap(sys.ref_order[0], sys.ref_order[4]);
  SimResult r;
  bool detected = false;
  try {
    r = simulate(p, design, fast_deadlock_options());
  } catch (const SimulationError&) {
    detected = true;
  }
  EXPECT_TRUE(detected || r.deadlocked);
}

TEST(Deadlock, ReportNamesTheStall) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0].fifos[0].depth = 2;
  const SimResult r = simulate(p, design, fast_deadlock_options());
  if (r.deadlocked) {
    EXPECT_NE(r.deadlock_detail.find("fifo_fill"), std::string::npos);
    EXPECT_NE(r.deadlock_detail.find("array A"), std::string::npos);
  }
}

TEST(Deadlock, CorrectDesignsNeverDeadlock) {
  // The two conditions of Section 3.3.2 are sufficient: every properly
  // built design runs to completion (checked across shapes).
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(12, 16), stencil::sobel_2d(12, 16),
      stencil::bicubic_2d(8, 24), stencil::heat_3d(6, 8, 10),
      stencil::triangular_demo(14), stencil::skewed_demo(10, 16)};
  for (const stencil::StencilProgram& p : programs) {
    const SimResult r = simulate(p, arch::build_design(p), {});
    EXPECT_FALSE(r.deadlocked) << p.name() << ": " << r.deadlock_detail;
  }
}

TEST(Deadlock, MaxCyclesGuardStopsRunaways) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  arch::AcceleratorDesign design = arch::build_design(p);
  SimOptions options;
  options.max_cycles = 10;  // far too few to finish
  const SimResult r = simulate(p, design, options);
  EXPECT_EQ(r.cycles, 10);
  EXPECT_LT(r.kernel_fires, p.iteration().count());
}

}  // namespace
}  // namespace nup::sim
