// Parameterized sweeps: the invariants of the design hold across grid
// sizes, data widths, prefetch configurations, and random programs driven
// through the RTL interpreter.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "arch/builder.hpp"
#include "arch/verify.hpp"
#include "core/rtl_verify.hpp"
#include "hls/estimate.hpp"
#include "sim/fast.hpp"
#include "sim/prefetch.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/rng.hpp"

namespace nup {
namespace {

// ---- grid-size sweep -------------------------------------------------

class GridSizeSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GridSizeSweep, DenoiseInvariantsHoldAtEverySize) {
  const auto [rows, cols] = GetParam();
  const stencil::StencilProgram p = stencil::denoise_2d(rows, cols);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const arch::MemorySystem& sys = design.systems[0];
  // Table 2 structure at every size: {cols-1, 1, 1, cols-1}.
  ASSERT_EQ(sys.fifos.size(), 4u);
  EXPECT_EQ(sys.fifos[0].depth, cols - 1);
  EXPECT_EQ(sys.fifos[1].depth, 1);
  EXPECT_EQ(sys.fifos[2].depth, 1);
  EXPECT_EQ(sys.fifos[3].depth, cols - 1);
  EXPECT_EQ(sys.total_buffer_size(), 2 * cols);
  EXPECT_TRUE(arch::verify_design(p, sys).all_ok());
}

TEST_P(GridSizeSweep, SimulationScalesAndStaysCorrect) {
  const auto [rows, cols] = GetParam();
  const stencil::StencilProgram p = stencil::denoise_2d(rows, cols);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  sim::SimResult results[2];
  for (const sim::SimBackend backend :
       {sim::SimBackend::kReference, sim::SimBackend::kFast}) {
    sim::SimOptions options;
    options.backend = backend;
    const sim::SimResult r = sim::simulate(p, design, options);
    ASSERT_FALSE(r.deadlocked);
    EXPECT_EQ(r.kernel_fires, (rows - 2) * (cols - 2));
    ASSERT_EQ(r.outputs.size(), golden.outputs.size());
    EXPECT_EQ(r.outputs.back(), golden.outputs.back());
    EXPECT_EQ(r.outputs.front(), golden.outputs.front());
    results[backend == sim::SimBackend::kFast ? 1 : 0] = r;
  }
  EXPECT_EQ(results[0].cycles, results[1].cycles);
  EXPECT_EQ(results[0].fifo_max_fill, results[1].fifo_max_fill);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GridSizeSweep,
    ::testing::Values(std::pair{8, 8}, std::pair{8, 64}, std::pair{64, 8},
                      std::pair{16, 128}, std::pair{128, 16},
                      std::pair{96, 96}));

// ---- data-width sweep --------------------------------------------------

class DataWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DataWidthSweep, ResourceModelScalesWithWidth) {
  const int width = GetParam();
  const stencil::StencilProgram p = stencil::denoise_2d();
  const hls::DeviceModel device = hls::virtex7_485t();
  hls::EstimateOptions options;
  options.data_width_bits = width;
  const hls::ResourceUsage usage =
      hls::estimate_streaming(arch::build_design(p), p, device, options);
  EXPECT_EQ(usage.dsp48, 0);
  EXPECT_GT(usage.slices, 0);
  // Wider data needs at least as many BRAM columns.
  hls::EstimateOptions narrow;
  narrow.data_width_bits = 8;
  const hls::ResourceUsage usage8 =
      hls::estimate_streaming(arch::build_design(p), p, device, narrow);
  EXPECT_GE(usage.bram18k, usage8.bram18k);
}

INSTANTIATE_TEST_SUITE_P(Widths, DataWidthSweep,
                         ::testing::Values(8, 16, 32, 64));

// ---- prefetch-config sweep ----------------------------------------------

class PrefetchSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PrefetchSweep, CorrectUnderAnyLatencyBufferCombination) {
  // Both simulator backends must absorb the same prefetch latency and
  // buffering behaviour: the PrefetchFeed is stateful (tick-driven), so
  // identical cycle counts here show the fast lane drives feeds on
  // exactly the reference's schedule.
  const auto [latency, depth] = GetParam();
  const stencil::StencilProgram p = stencil::denoise_2d(12, 16);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  sim::PrefetchFeed::Config config;
  config.latency_cycles = latency;
  config.buffer_depth = depth;
  const auto make_feed = [&config] {
    return std::make_shared<sim::PrefetchFeed>(
        std::make_shared<sim::SyntheticFeed>(1, 0), config);
  };
  sim::SimOptions options;
  options.stall_limit = 1'000'000;

  sim::AcceleratorSim ref_sim(p, design, options);
  ref_sim.set_feed(0, 0, make_feed());
  const sim::SimResult ref = ref_sim.run();

  sim::FastSim fast_sim(p, design, options);
  fast_sim.set_feed(0, 0, make_feed());
  const sim::SimResult fast = fast_sim.run();

  for (const sim::SimResult& r : {ref, fast}) {
    ASSERT_FALSE(r.deadlocked)
        << "latency=" << latency << " depth=" << depth;
    EXPECT_EQ(r.kernel_fires, p.iteration().count());
    ASSERT_EQ(r.outputs.size(), golden.outputs.size());
    for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
      ASSERT_EQ(r.outputs[i], golden.outputs[i]);
    }
  }
  EXPECT_EQ(ref.cycles, fast.cycles);
  EXPECT_EQ(ref.fill_latency, fast.fill_latency);
  EXPECT_EQ(ref.fifo_max_fill, fast.fifo_max_fill);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PrefetchSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{10, 4}, std::pair{10, 16},
                      std::pair{50, 8}, std::pair{50, 64},
                      std::pair{200, 256}));

// ---- randomized RTL co-simulation ---------------------------------------

stencil::StencilProgram random_small_program(std::uint64_t seed) {
  Rng rng(seed * 40503 + 7);
  const std::size_t refs = static_cast<std::size_t>(rng.next_in(2, 6));
  std::set<poly::IntVec> offsets;
  while (offsets.size() < refs) {
    offsets.insert({rng.next_in(-1, 1), rng.next_in(-2, 2)});
  }
  poly::IntVec lo(2);
  poly::IntVec hi(2);
  for (std::size_t d = 0; d < 2; ++d) {
    std::int64_t reach_lo = 0;
    std::int64_t reach_hi = 0;
    for (const poly::IntVec& f : offsets) {
      reach_lo = std::min(reach_lo, f[d]);
      reach_hi = std::max(reach_hi, f[d]);
    }
    lo[d] = -reach_lo;
    hi[d] = lo[d] + rng.next_in(6, 12);
  }
  stencil::StencilProgram p("RTLRAND_" + std::to_string(seed),
                            poly::Domain::box(lo, hi));
  p.add_input("A",
              std::vector<poly::IntVec>(offsets.begin(), offsets.end()));
  return p;
}

class RandomRtlCosim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRtlCosim, GeneratedRtlMatchesModel) {
  const stencil::StencilProgram p = random_small_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  const core::RtlVerification rtl = core::verify_rtl(p, design);
  ASSERT_TRUE(rtl.ran) << rtl.detail;
  EXPECT_TRUE(rtl.passed) << p.name() << ": " << rtl.detail;

  // The RTL interpreter's counts must match both simulator backends.
  for (const sim::SimBackend backend :
       {sim::SimBackend::kReference, sim::SimBackend::kFast}) {
    sim::SimOptions options;
    options.backend = backend;
    options.record_outputs = false;
    const sim::SimResult cxx = sim::simulate(p, design, options);
    EXPECT_EQ(rtl.cycles, cxx.cycles) << p.name();
    EXPECT_EQ(rtl.fires, cxx.kernel_fires) << p.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRtlCosim,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---- multi-array RTL --------------------------------------------------

TEST(MultiArrayRtl, TwoSystemsCosimulate) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {8, 10}));
  p.add_input("A", {{-1, 0}, {0, 0}, {1, 0}});
  p.add_input("W", {{0, -1}, {0, 1}});
  p.set_kernel(stencil::make_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2}));
  const arch::AcceleratorDesign design = arch::build_design(p);
  const core::RtlVerification rtl = core::verify_rtl(p, design);
  ASSERT_TRUE(rtl.ran) << rtl.detail;
  EXPECT_TRUE(rtl.passed) << rtl.detail;
}


// ---- four-dimensional stencil -------------------------------------------

TEST(FourDimensional, FullStackWorksIn4D) {
  const stencil::StencilProgram p = stencil::lattice_4d();
  EXPECT_EQ(p.total_references(), 9u);
  const arch::AcceleratorDesign design = arch::build_design(p);
  EXPECT_EQ(design.systems[0].bank_count(), 8u);
  EXPECT_TRUE(arch::verify_design(p, design.systems[0]).all_ok());
  const sim::SimResult r = sim::simulate(p, design, {});
  ASSERT_FALSE(r.deadlocked) << r.deadlock_detail;
  EXPECT_EQ(r.kernel_fires, p.iteration().count());
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  ASSERT_EQ(r.outputs.size(), golden.outputs.size());
  EXPECT_EQ(r.outputs.back(), golden.outputs.back());
}

TEST(FourDimensional, RtlCosimIn4D) {
  const stencil::StencilProgram p = stencil::lattice_4d(4, 5, 5, 6);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const core::RtlVerification rtl = core::verify_rtl(p, design);
  ASSERT_TRUE(rtl.ran) << rtl.detail;
  EXPECT_TRUE(rtl.passed) << rtl.detail;
}

}  // namespace
}  // namespace nup
