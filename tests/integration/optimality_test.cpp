#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "hls/estimate.hpp"
#include "stencil/gallery.hpp"

namespace nup {
namespace {

/// The Table 4 comparison: our method dominates [8] on both bank count and
/// total buffer size on every paper benchmark.
TEST(Optimality, Table4BanksAndSizes) {
  struct Expectation {
    const char* name;
    std::size_t original_ii;  // number of loads
    std::size_t our_banks;    // n - 1
    std::size_t gmp_banks;    // measured reproduction of [8]
  };
  const Expectation expectations[] = {
      {"DENOISE", 5, 4, 5},     {"RICIAN", 4, 3, 5},
      {"SOBEL", 8, 7, 9},       {"BICUBIC", 4, 3, 5},
      {"DENOISE_3D", 7, 6, 7},  {"SEGMENTATION_3D", 19, 18, 20},
  };
  const std::vector<stencil::StencilProgram> programs =
      stencil::paper_benchmarks();
  ASSERT_EQ(programs.size(), std::size(expectations));
  for (std::size_t i = 0; i < programs.size(); ++i) {
    const stencil::StencilProgram& p = programs[i];
    const Expectation& e = expectations[i];
    ASSERT_EQ(p.name(), e.name);
    EXPECT_EQ(p.total_references(), e.original_ii) << p.name();

    const arch::AcceleratorDesign design = arch::build_design(p);
    EXPECT_EQ(design.systems[0].bank_count(), e.our_banks) << p.name();

    const baseline::UniformPartition gmp = baseline::gmp_partition(p, 0);
    EXPECT_EQ(gmp.banks, e.gmp_banks) << p.name();

    EXPECT_LT(design.systems[0].bank_count(), gmp.banks) << p.name();
    EXPECT_LT(design.systems[0].total_buffer_size(), gmp.total_size)
        << p.name();
  }
}

TEST(Optimality, DenoiseTotalSizeIsTheoreticalMinimum) {
  // Section 2.3: the minimum reuse buffer size for DENOISE is 2048 -- the
  // lifetime of an element between its first (A[i+1][j]) and last
  // (A[i-1][j]) access.
  const arch::AcceleratorDesign design =
      arch::build_design(stencil::denoise_2d());
  EXPECT_EQ(design.systems[0].total_buffer_size(), 2048);
}

TEST(Optimality, MinimumBanksBeatsEveryBaselineEverywhere) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const std::size_t ours =
        arch::build_design(p).systems[0].bank_count();
    EXPECT_LT(ours, baseline::gmp_partition(p, 0).banks) << p.name();
    EXPECT_LT(ours, baseline::cyclic_partition(p, 0).banks) << p.name();
  }
}

TEST(Optimality, Fig6WindowsShowTheGap) {
  // The paper's motivating cases: windows where [7][8] need strictly more
  // than n banks while ours needs n-1.
  const stencil::StencilProgram cases[] = {
      stencil::rician_2d(), stencil::bicubic_2d(),
      stencil::segmentation_3d()};
  for (const stencil::StencilProgram& p : cases) {
    const std::size_t n = p.total_references();
    EXPECT_GT(baseline::gmp_partition(p, 0).banks, n) << p.name();
    EXPECT_EQ(arch::build_design(p).systems[0].bank_count(), n - 1)
        << p.name();
  }
}

TEST(Optimality, ResourceDominanceShape) {
  // Table 5 aggregate shape: large BRAM savings, moderate slice savings,
  // complete DSP elimination.
  const hls::DeviceModel device = hls::virtex7_485t();
  double bram_sum = 0.0;
  double slice_sum = 0.0;
  int count = 0;
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const hls::ResourceUsage ours =
        hls::estimate_streaming(arch::build_design(p), p, device);
    const hls::ResourceUsage theirs = hls::estimate_uniform(
        baseline::gmp_partition(p, 0), p.total_references(), device);
    EXPECT_EQ(ours.dsp48, 0) << p.name();
    EXPECT_GT(theirs.dsp48, 0) << p.name();
    bram_sum += static_cast<double>(ours.bram18k - theirs.bram18k) /
                static_cast<double>(theirs.bram18k);
    slice_sum += static_cast<double>(ours.slices - theirs.slices) /
                 static_cast<double>(theirs.slices);
    ++count;
  }
  const double bram_avg = bram_sum / count;
  const double slice_avg = slice_sum / count;
  // Paper: -66% BRAM, -25% slices on ISE 14.2. Our analytical substitute
  // must land in the same regime.
  EXPECT_LT(bram_avg, -0.40);
  EXPECT_LT(slice_avg, -0.10);
}

}  // namespace
}  // namespace nup
