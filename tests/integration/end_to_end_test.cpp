#include <gtest/gtest.h>

#include "arch/tradeoff.hpp"
#include "codegen/verilog.hpp"
#include "core/compiler.hpp"
#include "frontend/sema.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"

namespace nup {
namespace {

/// Source text -> frontend -> builder -> simulator -> golden comparison ->
/// RTL, in one pass: the whole Fig 11 flow on a kernel nobody hand-tuned.
TEST(EndToEnd, SourceToVerifiedAccelerator) {
  const char* source = R"(
    // 2-D five-point smoother with asymmetric weights.
    for (i = 1; i <= 18; i++)
      for (j = 2; j <= 25; j++)
        OUT[i][j] = 0.4*IMG[i][j]
                  + 0.2*(IMG[i-1][j] + IMG[i+1][j])
                  + 0.15*(IMG[i][j-2] + IMG[i][j+1]);
  )";
  const core::AcceleratorPackage pkg =
      core::compile_source(source, "SMOOTH");
  EXPECT_TRUE(pkg.verified);
  EXPECT_EQ(pkg.design.total_bank_count(), 4u);
  EXPECT_EQ(codegen::lint_verilog(pkg.rtl), "");
  EXPECT_TRUE(pkg.checks[0].all_ok()) << pkg.checks[0].detail;
}

TEST(EndToEnd, BandwidthTradeoffPreservesCorrectnessAcrossTheCurve) {
  // Fig 14/15: every point on the bandwidth/memory curve is a working
  // accelerator.
  const stencil::StencilProgram p = stencil::sobel_2d(14, 18);
  arch::AcceleratorDesign base = arch::build_design(p);
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  for (std::size_t cuts = 0; cuts < p.total_references(); ++cuts) {
    arch::AcceleratorDesign design = base;
    design.systems[0] = arch::apply_tradeoff(base.systems[0], cuts);
    const sim::SimResult r = sim::simulate(p, design, {});
    ASSERT_FALSE(r.deadlocked) << "cuts=" << cuts;
    ASSERT_EQ(r.outputs.size(), golden.outputs.size()) << "cuts=" << cuts;
    for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
      ASSERT_EQ(r.outputs[i], golden.outputs[i])
          << "cuts=" << cuts << " output " << i;
    }
  }
}

TEST(EndToEnd, ExactAndHullModesAgreeOnOutputs) {
  const stencil::StencilProgram p = stencil::denoise_2d(18, 22);
  core::CompileOptions hull;
  core::CompileOptions exact;
  exact.build.exact_sizing = true;
  exact.build.exact_streaming = true;
  const core::AcceleratorPackage a = core::compile(p, hull);
  const core::AcceleratorPackage b = core::compile(p, exact);
  ASSERT_EQ(a.verification.outputs.size(), b.verification.outputs.size());
  for (std::size_t i = 0; i < a.verification.outputs.size(); ++i) {
    EXPECT_EQ(a.verification.outputs[i], b.verification.outputs[i]);
  }
  // Exact streaming skips the unused hull corners: fewer stream cycles.
  EXPECT_LE(b.verification.cycles, a.verification.cycles);
}

TEST(EndToEnd, GalleryAndParsedFrontendAgree) {
  // The same DENOISE written by hand and parsed from source produce
  // accelerators with identical structure.
  const stencil::StencilProgram parsed = frontend::parse_stencil(
      "for (i = 1; i <= 766; i++) for (j = 1; j <= 1022; j++) "
      "B[i][j] = 0.5*A[i][j] + 0.125*(A[i-1][j] + A[i+1][j] + A[i][j-1] + "
      "A[i][j+1]);",
      "DENOISE_SRC");
  const arch::AcceleratorDesign from_source = arch::build_design(parsed);
  const arch::AcceleratorDesign from_gallery =
      arch::build_design(stencil::denoise_2d());
  ASSERT_EQ(from_source.systems[0].fifos.size(),
            from_gallery.systems[0].fifos.size());
  for (std::size_t k = 0; k < from_source.systems[0].fifos.size(); ++k) {
    EXPECT_EQ(from_source.systems[0].fifos[k].depth,
              from_gallery.systems[0].fifos[k].depth);
  }
  EXPECT_EQ(from_source.systems[0].ordered_offsets,
            from_gallery.systems[0].ordered_offsets);
}

TEST(EndToEnd, LargeDenoiseFullRun) {
  // The paper-size DENOISE (768x1024): full streaming simulation at
  // II ~ 1 with the Table 2 buffer configuration.
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  sim::SimOptions options;
  options.record_outputs = false;
  const sim::SimResult r = sim::simulate(p, design, options);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.kernel_fires, 766 * 1022);
  EXPECT_LT(r.steady_ii, 1.01);
  EXPECT_EQ(r.fifo_max_fill[0][0], 1023);
  EXPECT_EQ(r.fifo_max_fill[0][3], 1023);
}

}  // namespace
}  // namespace nup
