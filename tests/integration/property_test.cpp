#include <gtest/gtest.h>

#include <set>

#include "arch/builder.hpp"
#include "arch/verify.hpp"
#include "baseline/conflict.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "poly/reuse.hpp"
#include "sim/simulator.hpp"
#include "stencil/golden.hpp"
#include "stencil/program.hpp"
#include "util/rng.hpp"

namespace nup {
namespace {

/// Deterministically generates a random stencil program from a seed:
/// random dimensionality (2-3), window (2-8 distinct offsets within reach
/// 2) and small grid.
stencil::StencilProgram random_program(std::uint64_t seed) {
  Rng rng(seed * 1000003 + 17);
  const std::size_t dims = static_cast<std::size_t>(rng.next_in(2, 3));
  const std::size_t refs = static_cast<std::size_t>(rng.next_in(2, 8));

  std::set<poly::IntVec> offsets;
  while (offsets.size() < refs) {
    poly::IntVec f(dims);
    for (std::size_t d = 0; d < dims; ++d) f[d] = rng.next_in(-2, 2);
    offsets.insert(std::move(f));
  }

  poly::IntVec lo(dims);
  poly::IntVec hi(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    std::int64_t reach_lo = 0;
    std::int64_t reach_hi = 0;
    for (const poly::IntVec& f : offsets) {
      reach_lo = std::min(reach_lo, f[d]);
      reach_hi = std::max(reach_hi, f[d]);
    }
    const std::int64_t extent =
        dims == 2 ? rng.next_in(10, 22) : rng.next_in(7, 10);
    lo[d] = -reach_lo;
    hi[d] = lo[d] + extent - 1;
  }

  stencil::StencilProgram p("RANDOM_" + std::to_string(seed),
                            poly::Domain::box(lo, hi));
  p.add_input("A",
              std::vector<poly::IntVec>(offsets.begin(), offsets.end()));
  return p;
}

class RandomStencil : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStencil, BankCountIsMinimum) {
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  EXPECT_EQ(design.systems[0].bank_count(), p.total_references() - 1);
}

TEST_P(RandomStencil, StaticChecksHold) {
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  const arch::ConditionCheck check =
      arch::verify_design(p, design.systems[0]);
  EXPECT_TRUE(check.all_ok()) << p.name() << ": " << check.detail;
}

TEST_P(RandomStencil, SimulationMatchesGolden) {
  const stencil::StencilProgram p = random_program(GetParam());
  const sim::SimResult r = sim::simulate(p, arch::build_design(p), {});
  ASSERT_FALSE(r.deadlocked) << p.name() << ": " << r.deadlock_detail;
  ASSERT_EQ(r.kernel_fires, p.iteration().count()) << p.name();
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  ASSERT_EQ(r.outputs.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(r.outputs[i], golden.outputs[i])
        << p.name() << " output " << i;
  }
}

TEST_P(RandomStencil, FifoFillNeverExceedsDepth) {
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  const sim::SimResult r = sim::simulate(p, design, {});
  ASSERT_FALSE(r.deadlocked);
  for (std::size_t k = 0; k < design.systems[0].fifos.size(); ++k) {
    EXPECT_LE(r.fifo_max_fill[0][k], design.systems[0].fifos[k].depth)
        << p.name() << " FIFO " << k;
  }
}

TEST_P(RandomStencil, ReuseDistanceLinearity) {
  // Property 3: adjacent distances along the chain sum to the end-to-end
  // distance (this is what makes the total buffer size minimal).
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  const arch::MemorySystem& sys = design.systems[0];
  if (sys.filter_count() < 2) return;
  const poly::Domain hull = p.data_domain_hull(0);
  std::int64_t sum = 0;
  for (std::size_t k = 0; k + 1 < sys.filter_count(); ++k) {
    sum += poly::max_reuse_distance(p.iteration(), hull,
                                    sys.ordered_offsets[k],
                                    sys.ordered_offsets[k + 1])
               .max_distance;
  }
  const std::int64_t end_to_end =
      poly::max_reuse_distance(p.iteration(), hull,
                               sys.ordered_offsets.front(),
                               sys.ordered_offsets.back())
          .max_distance;
  EXPECT_EQ(sum, end_to_end) << p.name();
}

TEST_P(RandomStencil, UniformBaselinesAreValidAndNeverSmaller) {
  const stencil::StencilProgram p = random_program(GetParam());
  const arch::AcceleratorDesign design = arch::build_design(p);
  const baseline::UniformPartition gmp = baseline::gmp_partition(p, 0);
  const baseline::UniformPartition cyc = baseline::cyclic_partition(p, 0);
  EXPECT_GE(gmp.banks, p.total_references());
  EXPECT_GE(cyc.banks, p.total_references());
  EXPECT_GT(gmp.banks, design.systems[0].bank_count());
  EXPECT_GT(cyc.banks, design.systems[0].bank_count());
  // Fairness: the found schemes truly avoid conflicts.
  const poly::IntVec alpha = gmp.scheme;
  const std::int64_t banks = static_cast<std::int64_t>(gmp.banks);
  EXPECT_TRUE(baseline::verify_by_sliding(
      p, 0,
      [&](const poly::IntVec& h) {
        std::int64_t dot = 0;
        for (std::size_t d = 0; d < h.size(); ++d) dot += alpha[d] * h[d];
        return ((dot % banks) + banks) % banks;
      },
      5'000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStencil,
                         ::testing::Range<std::uint64_t>(0, 24));

class RandomOffsetTriple : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomOffsetTriple, MaxReuseDistanceLinearityOnBoxes) {
  Rng rng(GetParam() * 7919 + 3);
  const poly::Domain iter = poly::Domain::box({3, 3}, {12, 14});
  const poly::Domain data = poly::Domain::box({0, 0}, {15, 17});
  std::vector<poly::IntVec> fs;
  for (int k = 0; k < 3; ++k) {
    fs.push_back({rng.next_in(-3, 3), rng.next_in(-3, 3)});
  }
  std::sort(fs.begin(), fs.end(), [](const auto& a, const auto& b) {
    return poly::lex_less(b, a);
  });
  const std::int64_t d01 =
      poly::max_reuse_distance(iter, data, fs[0], fs[1]).max_distance;
  const std::int64_t d12 =
      poly::max_reuse_distance(iter, data, fs[1], fs[2]).max_distance;
  const std::int64_t d02 =
      poly::max_reuse_distance(iter, data, fs[0], fs[2]).max_distance;
  EXPECT_EQ(d02, d01 + d12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOffsetTriple,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace nup
