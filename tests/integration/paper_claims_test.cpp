// Every headline number in EXPERIMENTS.md, asserted programmatically so
// documentation and code cannot drift apart. If one of these fails, fix
// the code or fix the docs -- never ignore it.

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "arch/perf_model.hpp"
#include "arch/tradeoff.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "hls/power.hpp"
#include "hls/report.hpp"
#include "stencil/gallery.hpp"

namespace nup {
namespace {

TEST(PaperClaims, Fig2DenoiseNumbers) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  EXPECT_EQ(p.iteration().count(), 766 * 1022);          // 782,852
  EXPECT_EQ(p.input_data_domain(0).count(), 768 * 1024 - 4);
}

TEST(PaperClaims, Table2DenoiseFifos) {
  const arch::MemorySystem sys =
      arch::build_design(stencil::denoise_2d()).systems[0];
  ASSERT_EQ(sys.fifos.size(), 4u);
  EXPECT_EQ(sys.fifos[0].depth, 1023);
  EXPECT_EQ(sys.fifos[1].depth, 1);
  EXPECT_EQ(sys.fifos[2].depth, 1);
  EXPECT_EQ(sys.fifos[3].depth, 1023);
  EXPECT_EQ(sys.total_buffer_size(), 2048);
}

TEST(PaperClaims, Table4Columns) {
  struct Row {
    const char* name;
    std::size_t orig_ii;
    std::size_t banks_gmp;
    std::size_t banks_ours;
    std::int64_t size_gmp;
    std::int64_t size_ours;
  };
  const Row rows[] = {
      {"DENOISE", 5, 5, 4, 3075, 2048},
      {"RICIAN", 4, 5, 3, 3075, 2048},
      {"SOBEL", 8, 9, 7, 3078, 2050},
      {"BICUBIC", 4, 5, 3, 1025, 6},
      {"DENOISE_3D", 7, 7, 6, 53067, 32768},
      {"SEGMENTATION_3D", 19, 20, 18, 58800, 33024},
  };
  const std::vector<stencil::StencilProgram> programs =
      stencil::paper_benchmarks();
  for (std::size_t i = 0; i < programs.size(); ++i) {
    const Row& row = rows[i];
    ASSERT_EQ(programs[i].name(), row.name);
    EXPECT_EQ(programs[i].total_references(), row.orig_ii) << row.name;
    const baseline::UniformPartition gmp =
        baseline::gmp_partition(programs[i], 0);
    EXPECT_EQ(gmp.banks, row.banks_gmp) << row.name;
    EXPECT_EQ(gmp.total_size, row.size_gmp) << row.name;
    const arch::AcceleratorDesign ours = arch::build_design(programs[i]);
    EXPECT_EQ(ours.systems[0].bank_count(), row.banks_ours) << row.name;
    EXPECT_EQ(ours.systems[0].total_buffer_size(), row.size_ours)
        << row.name;
  }
}

TEST(PaperClaims, Fig5CyclicRowSizePoints) {
  const std::vector<poly::IntVec> window = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  EXPECT_EQ(baseline::cyclic_partition_raw(window, {768, 1023}).banks, 5u);
  EXPECT_EQ(baseline::cyclic_partition_raw(window, {768, 1024}).banks, 6u);
  EXPECT_EQ(baseline::cyclic_partition_raw(window, {768, 1005}).banks, 7u);
  EXPECT_EQ(baseline::cyclic_partition_raw(window, {768, 1015}).banks, 9u);
}

TEST(PaperClaims, Table5Averages) {
  const hls::DeviceModel device = hls::virtex7_485t();
  std::vector<hls::SynthesisComparison> rows;
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    hls::SynthesisComparison row;
    row.benchmark = p.name();
    row.baseline = hls::estimate_uniform(baseline::gmp_partition(p, 0),
                                         p.total_references(), device);
    row.ours = hls::estimate_streaming(arch::build_design(p), p, device);
    rows.push_back(row);
  }
  const hls::SynthesisAverages avg = hls::average_deltas(rows);
  // EXPERIMENTS.md: BRAM -60.2%, slices -19.3%, DSP -100%, CP -8.1%.
  EXPECT_NEAR(avg.bram, -0.602, 0.005);
  EXPECT_NEAR(avg.slices, -0.193, 0.005);
  EXPECT_DOUBLE_EQ(avg.dsp, -1.0);
  EXPECT_NEAR(avg.clock_period, -0.081, 0.005);
}

TEST(PaperClaims, Fig15SweepEndpointsAndPhases) {
  const arch::MemorySystem sys =
      arch::build_design(stencil::segmentation_3d()).systems[0];
  const std::vector<arch::TradeoffPoint> curve = arch::bandwidth_sweep(sys);
  ASSERT_EQ(curve.size(), 19u);
  EXPECT_EQ(curve.front().total_buffer_size, 33024);
  EXPECT_EQ(curve.back().total_buffer_size, 0);
  // Three phases: largest remaining FIFO 16127 -> 127 -> 1.
  EXPECT_EQ(curve.front().largest_remaining, 16127);
  bool saw_row = false;
  bool saw_unit = false;
  for (const arch::TradeoffPoint& point : curve) {
    saw_row = saw_row || point.largest_remaining == 127;
    saw_unit = saw_unit || point.largest_remaining == 1;
  }
  EXPECT_TRUE(saw_row);
  EXPECT_TRUE(saw_unit);
}

TEST(PaperClaims, PerfHeadline) {
  // README: full DENOISE streams at II ~ 1.002 with a 2050-cycle fill.
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::PerfPrediction pred =
      arch::predict_performance(p, arch::build_design(p).systems[0]);
  EXPECT_EQ(pred.fill_latency, 2050);
  EXPECT_NEAR(pred.steady_ii, 1.002, 0.0005);
}

TEST(PaperClaims, PowerHeadline) {
  // EXPERIMENTS.md: gated power 28.7 vs 132.4 mW on DENOISE.
  const hls::DeviceModel device = hls::virtex7_485t();
  const stencil::StencilProgram p = stencil::denoise_2d();
  const hls::PowerEstimate ours = hls::estimate_power(
      hls::estimate_streaming(arch::build_design(p), p, device), device);
  const hls::PowerEstimate theirs = hls::estimate_power(
      hls::estimate_uniform(baseline::gmp_partition(p, 0),
                            p.total_references(), device),
      device);
  EXPECT_NEAR(ours.gated_mw, 28.7, 0.5);
  EXPECT_NEAR(theirs.gated_mw, 132.4, 0.5);
}

}  // namespace
}  // namespace nup
