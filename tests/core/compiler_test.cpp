#include "core/compiler.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::core {
namespace {

TEST(Compiler, FullFlowOnSmallDenoise) {
  const AcceleratorPackage pkg = compile(stencil::denoise_2d(24, 32));
  EXPECT_TRUE(pkg.verified);
  EXPECT_EQ(pkg.design.total_bank_count(), 4u);
  ASSERT_EQ(pkg.checks.size(), 1u);
  EXPECT_TRUE(pkg.checks[0].all_ok()) << pkg.checks[0].detail;
  EXPECT_FALSE(pkg.rtl.empty());
  EXPECT_FALSE(pkg.testbench.empty());
  EXPECT_FALSE(pkg.kernel_code.empty());
  EXPECT_FALSE(pkg.integration_header.empty());
  EXPECT_EQ(pkg.resources.dsp48, 0);
}

TEST(Compiler, SummaryMentionsKeyFacts) {
  const AcceleratorPackage pkg = compile(stencil::denoise_2d(24, 32));
  const std::string text = pkg.summary();
  EXPECT_NE(text.find("DENOISE"), std::string::npos);
  EXPECT_NE(text.find("4 bank(s)"), std::string::npos);
  EXPECT_NE(text.find("outputs match golden execution"),
            std::string::npos);
  EXPECT_NE(text.find("BRAM18K"), std::string::npos);
}

TEST(Compiler, SourceEntryPoint) {
  const AcceleratorPackage pkg = compile_source(
      "for (i = 1; i <= 14; i++)\n"
      "  for (j = 1; j <= 18; j++)\n"
      "    B[i][j] = 0.25*(A[i-1][j] + A[i+1][j] + A[i][j-1] + "
      "A[i][j+1]);",
      "CROSS");
  EXPECT_TRUE(pkg.verified);
  EXPECT_EQ(pkg.design.total_bank_count(), 3u);
  EXPECT_NE(pkg.rtl.find("module cross_top"), std::string::npos);
}

TEST(Compiler, VerificationCanBeSkipped) {
  CompileOptions options;
  options.verify_by_simulation = false;
  const AcceleratorPackage pkg =
      compile(stencil::denoise_2d(24, 32), options);
  EXPECT_FALSE(pkg.verified);
  EXPECT_EQ(pkg.verification.cycles, 0);
  EXPECT_FALSE(pkg.rtl.empty());
}

TEST(Compiler, CodegenCanBeSkipped) {
  CompileOptions options;
  options.emit_rtl = false;
  options.emit_kernel_code = false;
  const AcceleratorPackage pkg =
      compile(stencil::denoise_2d(24, 32), options);
  EXPECT_TRUE(pkg.rtl.empty());
  EXPECT_TRUE(pkg.kernel_code.empty());
}

TEST(Compiler, ExactModeOnSkewedGrid) {
  CompileOptions options;
  options.build.exact_sizing = true;
  options.build.exact_streaming = true;
  const AcceleratorPackage pkg =
      compile(stencil::skewed_demo(14, 20), options);
  EXPECT_TRUE(pkg.verified);
  EXPECT_TRUE(pkg.checks[0].all_ok()) << pkg.checks[0].detail;
}

TEST(Compiler, ParsesAndRejectsBadSource) {
  EXPECT_THROW(compile_source("for (i = 0; i < 4; i++) B[i] = A[2*i];",
                              "BAD"),
               NotStencilError);
  EXPECT_THROW(compile_source("not a kernel at all", "BAD"), ParseError);
}

TEST(Compiler, ThreeDimensionalFlow) {
  const AcceleratorPackage pkg = compile(stencil::heat_3d(6, 8, 10));
  EXPECT_TRUE(pkg.verified);
  EXPECT_EQ(pkg.design.total_bank_count(), 6u);
}


TEST(Compiler, RtlCosimStageInFlow) {
  CompileOptions options;
  options.verify_rtl = true;
  const AcceleratorPackage pkg =
      compile(stencil::denoise_2d(12, 16), options);
  EXPECT_TRUE(pkg.rtl_verification.ran);
  EXPECT_TRUE(pkg.rtl_verification.passed)
      << pkg.rtl_verification.detail;
  EXPECT_EQ(pkg.rtl_verification.fires, pkg.verification.kernel_fires);
  EXPECT_EQ(pkg.rtl_verification.cycles, pkg.verification.cycles);
  EXPECT_NE(pkg.summary().find("RTL co-simulation: passed"),
            std::string::npos);
}

TEST(Compiler, RtlCosimSkipsLargePrograms) {
  CompileOptions options;
  options.verify_rtl = true;
  options.verify_by_simulation = false;
  options.rtl_verify.max_iterations = 10;
  const AcceleratorPackage pkg =
      compile(stencil::denoise_2d(24, 32), options);
  EXPECT_FALSE(pkg.rtl_verification.ran);
  EXPECT_NE(pkg.rtl_verification.detail.find("skipped"),
            std::string::npos);
}


TEST(Compiler, RtlVerifyCatchesTamperedDesign) {
  // Corrupt the filter order after building: the RTL built from the
  // corrupted design routes wrong elements, and verify_rtl must say so.
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  arch::AcceleratorDesign design = arch::build_design(p);
  std::swap(design.systems[0].ordered_offsets[1],
            design.systems[0].ordered_offsets[2]);
  const RtlVerification rtl = verify_rtl(p, design);
  ASSERT_TRUE(rtl.ran);
  EXPECT_FALSE(rtl.passed);
  EXPECT_FALSE(rtl.detail.empty());
}

}  // namespace
}  // namespace nup::core
