#include "core/json_export.hpp"

#include <gtest/gtest.h>

#include "stencil/gallery.hpp"

namespace nup::core {
namespace {

TEST(JsonExport, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(JsonExport, ContainsDesignFacts) {
  const AcceleratorPackage pkg = compile(stencil::denoise_2d(24, 32));
  const std::string json = to_json(pkg);
  EXPECT_NE(json.find("\"name\": \"DENOISE\""), std::string::npos);
  EXPECT_NE(json.find("\"original_ii\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"banks\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"verified\": true"), std::string::npos);
  EXPECT_NE(json.find("\"dsp48\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"filters\": [[1,0],[0,1],[0,0],[0,-1],[-1,0]]"),
            std::string::npos);
}

TEST(JsonExport, BalancedBracesAndQuotes) {
  const AcceleratorPackage pkg = compile(stencil::bicubic_2d(12, 30));
  const std::string json = to_json(pkg);
  long braces = 0;
  long brackets = 0;
  long quotes = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST(JsonExport, MultiSystemPrograms) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {8, 8}));
  p.add_input("A", {{0, 0}, {0, -1}});
  p.add_input("W", {{0, 0}, {-1, 0}});
  CompileOptions options;
  options.verify_by_simulation = false;
  const std::string json = to_json(compile(p, options));
  EXPECT_NE(json.find("\"array\": \"A\""), std::string::npos);
  EXPECT_NE(json.find("\"array\": \"W\""), std::string::npos);
  EXPECT_NE(json.find("\"verified\": false"), std::string::npos);
}

}  // namespace
}  // namespace nup::core
