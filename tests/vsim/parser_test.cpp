#include "vsim/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::vsim {
namespace {

constexpr const char* kCounter = R"(
`timescale 1ns/1ps
// simple wrap-around counter
module counter #(
    parameter MAX = 9
) (
    input  wire clk,
    input  wire rst,
    input  wire en,
    output wire [7:0] value
);
  reg [7:0] cnt;
  assign value = cnt;
  always @(posedge clk) begin
    if (rst) begin
      cnt <= 0;
    end else if (en) begin
      cnt <= (cnt == MAX) ? 0 : cnt + 1;
    end
  end
endmodule
)";

TEST(VerilogParser, ParsesModuleShape) {
  const VDesign design = parse_verilog(kCounter);
  ASSERT_EQ(design.modules.size(), 1u);
  const VModule& m = design.modules[0];
  EXPECT_EQ(m.name, "counter");
  ASSERT_EQ(m.params.size(), 1u);
  EXPECT_EQ(m.params[0].name, "MAX");
  EXPECT_EQ(m.nets.size(), 5u);  // 4 ports + cnt
  EXPECT_EQ(m.assigns.size(), 1u);
  EXPECT_EQ(m.always_blocks.size(), 1u);
  EXPECT_EQ(m.always_blocks[0].clock, "clk");
}

TEST(VerilogParser, PortDirectionsAndWidths) {
  const VDesign design = parse_verilog(kCounter);
  const VModule& m = design.modules[0];
  EXPECT_EQ(m.nets[0].dir, VPortDir::kInput);
  EXPECT_EQ(m.nets[3].dir, VPortDir::kOutput);
  EXPECT_TRUE(m.nets[3].msb != nullptr);
  EXPECT_FALSE(m.nets[0].msb != nullptr);
}

TEST(VerilogParser, FindLocatesModules) {
  const VDesign design = parse_verilog(kCounter);
  EXPECT_NE(design.find("counter"), nullptr);
  EXPECT_EQ(design.find("missing"), nullptr);
}

TEST(VerilogParser, ParsesMemoriesAndInstances) {
  const VDesign design = parse_verilog(R"(
    module ram ( input wire clk, input wire [3:0] a,
                 input wire [7:0] d, input wire we,
                 output wire [7:0] q );
      reg [7:0] mem [0:15];
      assign q = mem[a];
      always @(posedge clk) begin
        if (we) mem[a] <= d;
      end
    endmodule
    module top ( input wire clk );
      wire [7:0] q;
      wire [3:0] a;
      wire [7:0] d;
      wire we;
      ram u_ram (.clk(clk), .a(a), .d(d), .we(we), .q(q));
    endmodule
  )");
  ASSERT_EQ(design.modules.size(), 2u);
  const VModule& ram = design.modules[0];
  bool found_mem = false;
  for (const VNetDecl& net : ram.nets) {
    if (net.name == "mem") {
      found_mem = net.mem_depth != nullptr;
    }
  }
  EXPECT_TRUE(found_mem);
  ASSERT_EQ(design.modules[1].instances.size(), 1u);
  EXPECT_EQ(design.modules[1].instances[0].module_name, "ram");
  EXPECT_EQ(design.modules[1].instances[0].connections.size(), 5u);
}

TEST(VerilogParser, SignedDeclarations) {
  const VDesign design = parse_verilog(
      "module m (input wire clk); reg signed [31:0] cnt0; "
      "always @(posedge clk) cnt0 <= cnt0 + 1; endmodule");
  bool found = false;
  for (const VNetDecl& net : design.modules[0].nets) {
    if (net.name == "cnt0") found = net.is_signed && net.is_reg;
  }
  EXPECT_TRUE(found);
}

TEST(VerilogParser, SizedLiterals) {
  const VDesign design = parse_verilog(
      "module m (input wire a, output wire b); assign b = a == 1'b1; "
      "endmodule");
  const VExpr& rhs = *design.modules[0].assigns[0].rhs;
  EXPECT_EQ(rhs.kind, VExprKind::kBinary);
  EXPECT_EQ(rhs.children[1]->literal, 1);
  EXPECT_EQ(rhs.children[1]->literal_width, 1);
  EXPECT_FALSE(rhs.children[1]->literal_signed);
}

TEST(VerilogParser, TernaryAndPartSelect) {
  const VDesign design = parse_verilog(
      "module m (input wire [8:0] p, output wire [7:0] q); "
      "assign q = (p[7:0] == 3) ? 0 : p[7:0]; endmodule");
  const VExpr& rhs = *design.modules[0].assigns[0].rhs;
  EXPECT_EQ(rhs.kind, VExprKind::kTernary);
  EXPECT_EQ(rhs.children[0]->children[0]->kind, VExprKind::kRange);
}

TEST(VerilogParser, RejectsUnsupportedConstructs) {
  EXPECT_THROW(parse_verilog("module m; initial x = 1; endmodule"),
               ParseError);
  EXPECT_THROW(parse_verilog("module m (input wire a); assign b = a & c; "
                             "endmodule"),
               ParseError);
}

TEST(VerilogParser, EmittedDesignsParse) {
  // Round-trip: everything our generator produces must be inside the
  // parser's subset. (Checked in depth by the cosimulation tests; here
  // just the parse.)
  const VDesign design = parse_verilog(kCounter);
  EXPECT_FALSE(design.modules.empty());
}

}  // namespace
}  // namespace nup::vsim
