#include "vsim/tb_runner.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "codegen/verilog.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::vsim {
namespace {

TbResult run(const stencil::StencilProgram& p,
             const arch::AcceleratorDesign& design) {
  return run_testbench(codegen::emit_verilog(p, design),
                       codegen::emit_testbench(p, design));
}

TEST(TbRunner, EmittedTestbenchPassesOnEmittedRtl) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 16);
  const TbResult r = run(p, arch::build_design(p));
  ASSERT_TRUE(r.finished);
  EXPECT_TRUE(r.passed) << r.display;
  EXPECT_EQ(r.fires, p.iteration().count());
  EXPECT_NE(r.display.find("PASS"), std::string::npos);
}

TEST(TbRunner, PassesForNonRectangularDomains) {
  const stencil::StencilProgram p = stencil::triangular_demo(10);
  const TbResult r = run(p, arch::build_design(p));
  ASSERT_TRUE(r.finished);
  EXPECT_TRUE(r.passed) << r.display;
}

TEST(TbRunner, PassesForTradedDualStreamDesign) {
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(design.systems[0], 1);
  const TbResult r = run(p, design);
  ASSERT_TRUE(r.finished);
  EXPECT_TRUE(r.passed) << r.display;
}

TEST(TbRunner, FailsOnBrokenRtl) {
  // An undersized FIFO wedges the chain; the TB must hit its timeout and
  // print FAIL rather than hanging.
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  arch::AcceleratorDesign design = arch::build_design(p);
  const std::string tb = codegen::emit_testbench(p, design);
  design.systems[0].fifos[0].depth = 2;  // needs 11
  const std::string rtl = codegen::emit_verilog(p, design);
  const TbResult r = run_testbench(rtl, tb);
  ASSERT_TRUE(r.finished);
  EXPECT_FALSE(r.passed);
  EXPECT_NE(r.display.find("FAIL"), std::string::npos);
  EXPECT_LT(r.fires, p.iteration().count());
}

TEST(TbRunner, RejectsForeignText) {
  EXPECT_THROW(run_testbench("module x (); endmodule",
                             "this is not a testbench"),
               ParseError);
}

TEST(TbRunner, CycleCountMatchesRtlCosim) {
  const stencil::StencilProgram p = stencil::sobel_2d(8, 10);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const TbResult r = run(p, design);
  ASSERT_TRUE(r.passed) << r.display;
  // The displayed cycle count is the cycle whose edge counted the last
  // fire (TB reads pre-edge values), so it equals the model's total.
  EXPECT_GT(r.cycles, 0);
}

}  // namespace
}  // namespace nup::vsim
