#include "vsim/interp.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::vsim {
namespace {

constexpr const char* kCounter = R"(
module counter #(
    parameter MAX = 9
) (
    input  wire clk,
    input  wire rst,
    input  wire en,
    output wire [7:0] value,
    output wire       wrapped
);
  reg [7:0] cnt;
  assign value = cnt;
  assign wrapped = (cnt == MAX);
  always @(posedge clk) begin
    if (rst) begin
      cnt <= 0;
    end else if (en) begin
      cnt <= (cnt == MAX) ? 0 : cnt + 1;
    end
  end
endmodule
)";

TEST(VerilogInterp, CounterCountsAndWraps) {
  VerilogSim sim(kCounter, "counter");
  sim.poke("rst", 1);
  sim.poke("en", 0);
  sim.step_clock();
  sim.poke("rst", 0);
  sim.poke("en", 1);
  for (int i = 0; i < 9; ++i) sim.step_clock();
  sim.eval();
  EXPECT_EQ(sim.peek("value"), 9u);
  EXPECT_EQ(sim.peek("wrapped"), 1u);
  sim.step_clock();
  sim.eval();
  EXPECT_EQ(sim.peek("value"), 0u);
}

TEST(VerilogInterp, EnableGatesTheCounter) {
  VerilogSim sim(kCounter, "counter");
  sim.poke("rst", 1);
  sim.step_clock();
  sim.poke("rst", 0);
  sim.poke("en", 0);
  for (int i = 0; i < 5; ++i) sim.step_clock();
  sim.eval();
  EXPECT_EQ(sim.peek("value"), 0u);
}

TEST(VerilogInterp, SignedComparisons) {
  VerilogSim sim(R"(
    module m (
        input  wire clk,
        input  wire rst,
        output wire neg,
        output wire ge
    );
      reg signed [31:0] cnt;
      assign neg = cnt < 0;
      assign ge = (-1) * cnt + (-2) >= 0;
      always @(posedge clk) begin
        if (rst) cnt <= -5;
        else cnt <= cnt + 1;
      end
    endmodule
  )",
                 "m");
  sim.poke("rst", 1);
  sim.step_clock();
  sim.poke("rst", 0);
  sim.eval();
  // cnt == -5: neg, and -1*-5-2 = 3 >= 0.
  EXPECT_EQ(sim.peek("neg"), 1u);
  EXPECT_EQ(sim.peek("ge"), 1u);
  for (int i = 0; i < 5; ++i) sim.step_clock();
  sim.eval();  // cnt == 0
  EXPECT_EQ(sim.peek("neg"), 0u);
  EXPECT_EQ(sim.peek("ge"), 0u);  // -2 >= 0 false
}

TEST(VerilogInterp, MemoryReadWrite) {
  VerilogSim sim(R"(
    module ram (
        input  wire clk,
        input  wire we,
        input  wire [3:0] addr,
        input  wire [7:0] din,
        output wire [7:0] dout
    );
      reg [7:0] mem [0:15];
      assign dout = mem[addr];
      always @(posedge clk) begin
        if (we) mem[addr] <= din;
      end
    endmodule
  )",
                 "ram");
  sim.poke("we", 1);
  sim.poke("addr", 3);
  sim.poke("din", 0xAB);
  sim.step_clock();
  sim.poke("we", 0);
  sim.eval();
  EXPECT_EQ(sim.peek("dout"), 0xABu);
  sim.poke("addr", 4);
  sim.eval();
  EXPECT_EQ(sim.peek("dout"), 0u);
}

TEST(VerilogInterp, HierarchyAndParameters) {
  VerilogSim sim(R"(
    module child #(parameter INC = 3) (
        input  wire clk,
        input  wire rst,
        output wire [7:0] out
    );
      reg [7:0] acc;
      assign out = acc;
      always @(posedge clk) begin
        if (rst) acc <= 0;
        else acc <= acc + INC;
      end
    endmodule
    module top (
        input  wire clk,
        input  wire rst,
        output wire [7:0] a,
        output wire [7:0] b
    );
      child u_one (.clk(clk), .rst(rst), .out(a));
      child #(.INC(5)) u_two (.clk(clk), .rst(rst), .out(b));
    endmodule
  )",
                 "top");
  sim.poke("rst", 1);
  sim.step_clock();
  sim.poke("rst", 0);
  for (int i = 0; i < 4; ++i) sim.step_clock();
  sim.eval();
  EXPECT_EQ(sim.peek("a"), 12u);
  EXPECT_EQ(sim.peek("b"), 20u);
  // Hierarchical access into the instances.
  EXPECT_EQ(sim.peek("u_one.acc"), 12u);
  EXPECT_EQ(sim.peek("u_two.acc"), 20u);
}

TEST(VerilogInterp, NonBlockingSemantics) {
  // Classic swap: both registers read pre-edge values.
  VerilogSim sim(R"(
    module swap (
        input  wire clk,
        input  wire rst,
        output wire [7:0] x,
        output wire [7:0] y
    );
      reg [7:0] a;
      reg [7:0] b;
      assign x = a;
      assign y = b;
      always @(posedge clk) begin
        if (rst) begin
          a <= 1;
          b <= 2;
        end else begin
          a <= b;
          b <= a;
        end
      end
    endmodule
  )",
                 "swap");
  sim.poke("rst", 1);
  sim.step_clock();
  sim.poke("rst", 0);
  sim.step_clock();
  sim.eval();
  EXPECT_EQ(sim.peek("x"), 2u);
  EXPECT_EQ(sim.peek("y"), 1u);
  sim.step_clock();
  sim.eval();
  EXPECT_EQ(sim.peek("x"), 1u);
  EXPECT_EQ(sim.peek("y"), 2u);
}

TEST(VerilogInterp, ErrorsOnUnknownNames) {
  VerilogSim sim(kCounter, "counter");
  EXPECT_THROW(sim.poke("nope", 1), Error);
  EXPECT_THROW(sim.peek("nope"), Error);
  EXPECT_THROW(VerilogSim(kCounter, "missing"), Error);
}

TEST(VerilogInterp, PokeMasksToWidth) {
  VerilogSim sim(kCounter, "counter");
  sim.poke("en", 0xFF);  // 1-bit port
  sim.eval();
  // Reading inputs back is allowed through the name table.
  EXPECT_EQ(sim.peek("en"), 1u);
}


TEST(VerilogInterp, DetectsCombinationalLoop) {
  EXPECT_THROW(
      {
        VerilogSim sim(R"(
          module loopy (input wire clk, output wire q);
            wire a;
            assign a = !a;  // oscillates forever in two-state logic
            assign q = a;
          endmodule
        )",
                       "loopy");
        sim.eval();
      },
      Error);
}

TEST(VerilogInterp, LiteralPortConnection) {
  VerilogSim sim(R"(
    module child (input wire en, output wire q);
      assign q = en;
    endmodule
    module top (input wire clk, output wire q);
      child u_c (.en(1'b1), .q(q));
    endmodule
  )",
                 "top");
  sim.eval();
  EXPECT_EQ(sim.peek("q"), 1u);
}

}  // namespace
}  // namespace nup::vsim
