// The closing of the loop: the generated Verilog, executed by our own
// RTL interpreter, must behave exactly like the C++ cycle-accurate model
// -- same kernel-fire cycles, same per-port data routing, same FIFO
// occupancy. The stream carries sequence numbers, so each kernel port must
// deliver, at every fire, the lexicographic rank of the grid point its
// array reference needs (Property 1 made executable).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "codegen/verilog.hpp"
#include "poly/reuse.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "vsim/interp.hpp"

namespace nup {
namespace {

struct CosimResult {
  std::int64_t cycles = 0;
  std::int64_t fires = 0;
};

/// Drives the generated RTL with ramp data and checks every port at every
/// fire against the rank oracle. Returns cycle/fire counts for comparison
/// with the C++ model.
CosimResult run_rtl(const stencil::StencilProgram& p,
                    const arch::AcceleratorDesign& design,
                    const std::string& prefix,
                    std::int64_t max_cycles = 200000) {
  const std::string rtl = codegen::emit_verilog(p, design);
  vsim::VerilogSim sim(rtl, prefix + "_top");
  const arch::MemorySystem& sys = design.systems[0];

  // Rank oracle over the streamed hull: stream element #r is the r-th
  // point of the input domain in lexicographic order.
  const poly::RankOracle oracle(sys.input_domain);
  const std::vector<std::size_t> heads = sys.segment_heads();

  sim.poke("rst", 1);
  sim.poke("kernel_ready", 1);
  std::vector<std::uint64_t> seq(heads.size(), 0);
  for (std::size_t s = 0; s < heads.size(); ++s) {
    sim.poke("s0_stream" + std::to_string(s) + "_valid", 1);
    sim.poke("s0_stream" + std::to_string(s) + "_data", 0);
  }
  sim.step_clock();
  sim.step_clock();
  sim.poke("rst", 0);

  poly::Domain::LexCursor iter(p.iteration());
  CosimResult result;
  const std::int64_t total = p.iteration().count();
  while (result.fires < total && result.cycles < max_cycles) {
    for (std::size_t s = 0; s < heads.size(); ++s) {
      sim.poke("s0_stream" + std::to_string(s) + "_data", seq[s]);
    }
    sim.eval();
    if (sim.peek("kernel_fire") != 0) {
      const poly::IntVec& i = iter.point();
      for (std::size_t k = 0; k < sys.filter_count(); ++k) {
        const std::uint64_t expected = static_cast<std::uint64_t>(
            oracle.rank(poly::add(i, sys.ordered_offsets[k])));
        const std::uint64_t got =
            sim.peek("port_s0_f" + std::to_string(k));
        EXPECT_EQ(got, expected)
            << "iteration " << poly::to_string(i) << " port " << k;
        if (got != expected) return result;  // fail fast
      }
      iter.advance();
      ++result.fires;
    }
    std::vector<bool> advance(heads.size());
    for (std::size_t s = 0; s < heads.size(); ++s) {
      advance[s] =
          sim.peek("s0_stream" + std::to_string(s) + "_ready") != 0;
    }
    sim.step_clock();
    ++result.cycles;
    for (std::size_t s = 0; s < heads.size(); ++s) {
      if (advance[s]) ++seq[s];
    }
  }
  return result;
}

TEST(RtlCosim, DenoiseRoutesEveryPortCorrectly) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 16);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const CosimResult rtl = run_rtl(p, design, "denoise");
  EXPECT_EQ(rtl.fires, p.iteration().count());
}

TEST(RtlCosim, CycleCountMatchesCxxModelExactly) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 16);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const CosimResult rtl = run_rtl(p, design, "denoise");

  // The generated hardware agrees with the C++ model on both backends:
  // the reference (per-token points) and the compiled fast lane.
  for (const sim::SimBackend backend :
       {sim::SimBackend::kReference, sim::SimBackend::kFast}) {
    sim::SimOptions options;
    options.backend = backend;
    options.record_outputs = false;
    const sim::SimResult cxx = sim::simulate(p, design, options);
    EXPECT_EQ(rtl.fires, cxx.kernel_fires);
    EXPECT_EQ(rtl.cycles, cxx.cycles);
  }
}

TEST(RtlCosim, SobelEightPointWindow) {
  const stencil::StencilProgram p = stencil::sobel_2d(10, 12);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const CosimResult rtl = run_rtl(p, design, "sobel");
  EXPECT_EQ(rtl.fires, p.iteration().count());
}

TEST(RtlCosim, ThreeDimensionalWindow) {
  const stencil::StencilProgram p = stencil::heat_3d(5, 6, 7);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const CosimResult rtl = run_rtl(p, design, "heat_3d");
  EXPECT_EQ(rtl.fires, p.iteration().count());

  for (const sim::SimBackend backend :
       {sim::SimBackend::kReference, sim::SimBackend::kFast}) {
    sim::SimOptions options;
    options.backend = backend;
    options.record_outputs = false;
    const sim::SimResult cxx = sim::simulate(p, design, options);
    EXPECT_EQ(rtl.cycles, cxx.cycles);
  }
}

TEST(RtlCosim, NonRectangularMembershipLogic) {
  // The triangular domain exercises the general polyhedral membership
  // comparators in the filter modules (Fig 10).
  const stencil::StencilProgram p = stencil::triangular_demo(12);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const CosimResult rtl = run_rtl(p, design, "triangular_4pt");
  EXPECT_EQ(rtl.fires, p.iteration().count());
}

TEST(RtlCosim, BandwidthTradedDualStreamTop) {
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(design.systems[0], 1);
  const CosimResult rtl = run_rtl(p, design, "denoise");
  EXPECT_EQ(rtl.fires, p.iteration().count());
}

TEST(RtlCosim, FifoOccupancyVisibleInHierarchy) {
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string rtl = codegen::emit_verilog(p, design);
  vsim::VerilogSim sim(rtl, "denoise_top");
  sim.poke("rst", 1);
  sim.poke("kernel_ready", 1);
  sim.poke("s0_stream0_valid", 1);
  sim.poke("s0_stream0_data", 0);
  sim.step_clock();
  sim.poke("rst", 0);
  for (int c = 0; c < 40; ++c) sim.step_clock();
  sim.eval();
  // After 40 cycles of an 10x12 grid the first row FIFO has filled.
  EXPECT_GT(sim.peek("u_s0_q0.count"), 0u);
  EXPECT_LE(sim.peek("u_s0_q0.count"),
            static_cast<std::uint64_t>(design.systems[0].fifos[0].depth));
}

}  // namespace
}  // namespace nup
