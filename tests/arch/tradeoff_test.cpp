#include "arch/tradeoff.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::arch {
namespace {

MemorySystem denoise_system() {
  return build_design(stencil::denoise_2d()).systems[0];
}

TEST(Tradeoff, ZeroCutsIsIdentity) {
  const MemorySystem base = denoise_system();
  const MemorySystem same = apply_tradeoff(base, 0);
  EXPECT_EQ(same.total_buffer_size(), base.total_buffer_size());
  EXPECT_EQ(same.stream_count(), 1u);
}

TEST(Tradeoff, CutsLargestFifoFirst) {
  const MemorySystem base = denoise_system();
  const MemorySystem traded = apply_tradeoff(base, 1);
  // One of the two 1023-deep FIFOs must be cut (the first on ties).
  EXPECT_TRUE(traded.fifos[0].cut);
  EXPECT_FALSE(traded.fifos[3].cut);
  EXPECT_EQ(traded.total_buffer_size(), 1025);
  EXPECT_EQ(traded.stream_count(), 2u);
}

TEST(Tradeoff, SegmentHeadsFollowCuts) {
  const MemorySystem traded = apply_tradeoff(denoise_system(), 2);
  const std::vector<std::size_t> heads = traded.segment_heads();
  ASSERT_EQ(heads.size(), 3u);
  EXPECT_EQ(heads[0], 0u);
  EXPECT_EQ(heads[1], 1u);  // cut after filter 0
  EXPECT_EQ(heads[2], 4u);  // cut after filter 3
}

TEST(Tradeoff, FullCutLeavesNoStorage) {
  const MemorySystem base = denoise_system();
  const MemorySystem traded =
      apply_tradeoff(base, base.filter_count() - 1);
  EXPECT_EQ(traded.total_buffer_size(), 0);
  EXPECT_EQ(traded.bank_count(), 0u);
  EXPECT_EQ(traded.stream_count(), base.filter_count());
}

TEST(Tradeoff, TooManyCutsThrows) {
  const MemorySystem base = denoise_system();
  EXPECT_THROW(apply_tradeoff(base, base.filter_count()), Error);
}

TEST(Tradeoff, SweepIsMonotonicallyNonIncreasing) {
  const MemorySystem base =
      build_design(stencil::segmentation_3d()).systems[0];
  const std::vector<TradeoffPoint> curve = bandwidth_sweep(base);
  ASSERT_EQ(curve.size(), base.filter_count());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].total_buffer_size, curve[i - 1].total_buffer_size);
    EXPECT_EQ(curve[i].offchip_streams, curve[i - 1].offchip_streams + 1);
  }
  EXPECT_EQ(curve.front().offchip_streams, 1u);
  EXPECT_EQ(curve.back().total_buffer_size, 0);
}

TEST(Tradeoff, SweepShowsThreePhases) {
  // Fig 15: SEGMENTATION gives up inter-plane reuse (large buffers) first,
  // then inter-row (medium), then intra-row (small). The largest remaining
  // FIFO therefore decreases in distinct plateaus.
  const MemorySystem base =
      build_design(stencil::segmentation_3d()).systems[0];
  const std::vector<TradeoffPoint> curve = bandwidth_sweep(base);
  std::vector<std::int64_t> scales;
  for (const TradeoffPoint& point : curve) {
    if (scales.empty() || (point.largest_remaining != scales.back() &&
                           point.largest_remaining > 0)) {
      scales.push_back(point.largest_remaining);
    }
  }
  // At least three distinct buffer scales appear during degradation.
  EXPECT_GE(scales.size(), 3u);
}

TEST(Tradeoff, BankCountDropsByOnePerCut) {
  const MemorySystem base = denoise_system();
  for (std::size_t cuts = 0; cuts < base.filter_count(); ++cuts) {
    const MemorySystem traded = apply_tradeoff(base, cuts);
    EXPECT_EQ(traded.bank_count(), base.fifos.size() - cuts);
  }
}

}  // namespace
}  // namespace nup::arch
