#include "arch/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/tradeoff.hpp"
#include "stencil/gallery.hpp"

namespace nup::arch {
namespace {

TEST(Verify, AllPaperBenchmarksPass) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const AcceleratorDesign design = build_design(p);
    for (const MemorySystem& sys : design.systems) {
      const ConditionCheck check = verify_design(p, sys);
      EXPECT_TRUE(check.all_ok()) << p.name() << ": " << check.detail;
    }
  }
}

TEST(Verify, DetectsShuffledOrder) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  AcceleratorDesign design = build_design(p);
  MemorySystem& sys = design.systems[0];
  std::swap(sys.ordered_offsets[0], sys.ordered_offsets[1]);
  std::swap(sys.ref_order[0], sys.ref_order[1]);
  const ConditionCheck check = verify_design(p, sys);
  EXPECT_FALSE(check.ordering_descending);
  EXPECT_NE(check.detail.find("descending"), std::string::npos);
}

TEST(Verify, DetectsUndersizedFifo) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  AcceleratorDesign design = build_design(p);
  design.systems[0].fifos[0].depth -= 1;
  const ConditionCheck check = verify_design(p, design.systems[0]);
  EXPECT_FALSE(check.sizing_sufficient);
  EXPECT_NE(check.detail.find("needs"), std::string::npos);
}

TEST(Verify, DetectsExtraBank) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  AcceleratorDesign design = build_design(p);
  // An extra (redundant) bank breaks minimality but not the paper's
  // deadlock conditions; verify_design must flag it.
  ReuseFifo extra = design.systems[0].fifos.back();
  design.systems[0].fifos.push_back(extra);
  const ConditionCheck check = verify_design(p, design.systems[0]);
  EXPECT_FALSE(check.banks_minimum);
  EXPECT_FALSE(check.all_ok());
}

TEST(Verify, OversizedTotalFlagged) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  AcceleratorDesign design = build_design(p);
  design.systems[0].fifos[1].depth += 10;
  const ConditionCheck check = verify_design(p, design.systems[0]);
  EXPECT_TRUE(check.sizing_sufficient);  // still deadlock-free
  EXPECT_FALSE(check.size_minimum);      // but no longer minimal
}

TEST(Verify, TradedDesignStillChecksOut) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  const MemorySystem traded =
      apply_tradeoff(build_design(p).systems[0], 1);
  const ConditionCheck check = verify_design(p, traded);
  EXPECT_TRUE(check.ordering_descending);
  EXPECT_TRUE(check.sizing_sufficient);
  EXPECT_TRUE(check.banks_minimum);  // bank minimality waived after cuts
}

TEST(Verify, ExactSizedSkewedDesignPasses) {
  const stencil::StencilProgram p = stencil::skewed_demo(14, 20);
  BuildOptions options;
  options.exact_sizing = true;
  options.exact_streaming = true;
  const AcceleratorDesign design = build_design(p, options);
  const ConditionCheck check =
      verify_design(p, design.systems[0], options);
  EXPECT_TRUE(check.all_ok()) << check.detail;
}

TEST(Verify, SingleReferenceSystemPasses) {
  stencil::StencilProgram p("COPY", poly::Domain::box({0, 0}, {5, 5}));
  p.add_input("A", {{0, 0}});
  const AcceleratorDesign design = build_design(p);
  const ConditionCheck check = verify_design(p, design.systems[0]);
  EXPECT_TRUE(check.all_ok()) << check.detail;
}

}  // namespace
}  // namespace nup::arch
