#include "arch/builder.hpp"

#include <gtest/gtest.h>

#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::arch {
namespace {

TEST(Builder, DenoiseMatchesTable2) {
  // Paper Table 2: FIFO depths {1023, 1, 1, 1023}, total 2048, big FIFOs
  // in BRAM and unit FIFOs in registers.
  const AcceleratorDesign design = build_design(stencil::denoise_2d());
  ASSERT_EQ(design.systems.size(), 1u);
  const MemorySystem& sys = design.systems[0];
  ASSERT_EQ(sys.fifos.size(), 4u);
  EXPECT_EQ(sys.fifos[0].depth, 1023);
  EXPECT_EQ(sys.fifos[1].depth, 1);
  EXPECT_EQ(sys.fifos[2].depth, 1);
  EXPECT_EQ(sys.fifos[3].depth, 1023);
  EXPECT_EQ(sys.total_buffer_size(), 2048);
  EXPECT_EQ(sys.fifos[0].impl, BufferImpl::kBlockRam);
  EXPECT_EQ(sys.fifos[1].impl, BufferImpl::kRegister);
  EXPECT_EQ(sys.fifos[3].impl, BufferImpl::kBlockRam);
}

TEST(Builder, DenoiseFilterOrderIsDescendingLex) {
  const AcceleratorDesign design = build_design(stencil::denoise_2d());
  const MemorySystem& sys = design.systems[0];
  // (1,0) > (0,1) > (0,0) > (0,-1) > (-1,0) -- the Fig 7 order.
  ASSERT_EQ(sys.ordered_offsets.size(), 5u);
  EXPECT_EQ(sys.ordered_offsets[0], (poly::IntVec{1, 0}));
  EXPECT_EQ(sys.ordered_offsets[1], (poly::IntVec{0, 1}));
  EXPECT_EQ(sys.ordered_offsets[2], (poly::IntVec{0, 0}));
  EXPECT_EQ(sys.ordered_offsets[3], (poly::IntVec{0, -1}));
  EXPECT_EQ(sys.ordered_offsets[4], (poly::IntVec{-1, 0}));
}

TEST(Builder, BankCountIsAlwaysNMinus1) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const AcceleratorDesign design = build_design(p);
    EXPECT_EQ(design.systems[0].bank_count(), p.total_references() - 1)
        << p.name();
  }
}

TEST(Builder, TotalSizeEqualsEndToEndDistance) {
  // Sum of adjacent distances equals the first-to-last distance
  // (Property 3) on box hulls.
  const AcceleratorDesign design = build_design(stencil::segmentation_3d());
  const MemorySystem& sys = design.systems[0];
  // End-to-end: (1,1,0) .. (-1,-1,0) -> r=(2,2,0) on 96x128x128 hull:
  // 2*128*128 + 2*128 = 33024.
  EXPECT_EQ(sys.total_buffer_size(), 2 * 128 * 128 + 2 * 128);
}

TEST(Builder, RefOrderIsPermutation) {
  const AcceleratorDesign design = build_design(stencil::sobel_2d());
  const MemorySystem& sys = design.systems[0];
  std::vector<bool> seen(sys.ref_order.size(), false);
  for (std::size_t ref : sys.ref_order) {
    ASSERT_LT(ref, seen.size());
    EXPECT_FALSE(seen[ref]);
    seen[ref] = true;
  }
}

TEST(Builder, PhysicalMappingThresholds) {
  BuildOptions options;
  options.register_max_depth = 4;
  options.shift_register_max_depth = 128;
  EXPECT_EQ(map_physical(1, options), BufferImpl::kRegister);
  EXPECT_EQ(map_physical(4, options), BufferImpl::kRegister);
  EXPECT_EQ(map_physical(5, options), BufferImpl::kShiftRegister);
  EXPECT_EQ(map_physical(128, options), BufferImpl::kShiftRegister);
  EXPECT_EQ(map_physical(129, options), BufferImpl::kBlockRam);
}

TEST(Builder, ExactSizingOnSkewedGrid) {
  const stencil::StencilProgram p = stencil::skewed_demo(16, 24);
  BuildOptions exact;
  exact.exact_sizing = true;
  exact.exact_streaming = true;
  const AcceleratorDesign hull_design = build_design(p);
  const AcceleratorDesign exact_design = build_design(p, exact);
  // Exact sizing never exceeds the hull-box closed form.
  EXPECT_LE(exact_design.systems[0].total_buffer_size(),
            hull_design.systems[0].total_buffer_size());
  EXPECT_GT(exact_design.systems[0].total_buffer_size(), 0);
}

TEST(Builder, SingleReferenceYieldsNoFifos) {
  stencil::StencilProgram p("COPY", poly::Domain::box({0, 0}, {7, 7}));
  p.add_input("A", {{0, 0}});
  const AcceleratorDesign design = build_design(p);
  EXPECT_EQ(design.systems[0].filter_count(), 1u);
  EXPECT_TRUE(design.systems[0].fifos.empty());
  EXPECT_EQ(design.systems[0].bank_count(), 0u);
}

TEST(Builder, MultipleArraysGetIndependentSystems) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {6, 6}));
  p.add_input("A", {{0, 0}, {0, -1}});
  p.add_input("W", {{0, 0}, {-1, 0}, {1, 0}});
  const AcceleratorDesign design = build_design(p);
  ASSERT_EQ(design.systems.size(), 2u);
  EXPECT_EQ(design.systems[0].filter_count(), 2u);
  EXPECT_EQ(design.systems[1].filter_count(), 3u);
  EXPECT_EQ(design.total_bank_count(), 1u + 2u);
}

TEST(Builder, ThrowsOnProgramWithoutInputs) {
  stencil::StencilProgram p("EMPTY", poly::Domain::box({0}, {3}));
  EXPECT_THROW(build_design(p), NotStencilError);
}

TEST(Builder, DepthsAreClampedToAtLeastOne) {
  // Two references in the same innermost position at different rows of a
  // one-column grid: distances stay >= 1.
  stencil::StencilProgram p("COL", poly::Domain::box({1, 0}, {6, 0}));
  p.add_input("A", {{-1, 0}, {0, 0}, {1, 0}});
  const AcceleratorDesign design = build_design(p);
  for (const ReuseFifo& f : design.systems[0].fifos) {
    EXPECT_GE(f.depth, 1);
  }
}

// ---- W-wide datapaths (widen_design) ----------------------------------

TEST(Builder, WidenRescalesWordDepthsByEq2OverW) {
  // Table 2 chain {1023, 1, 1, 1023} at W=8: word depths {128, 1, 1, 128};
  // the element-level Eq. 2 depth is untouched.
  BuildOptions opts;
  opts.datapath_width = 8;
  const AcceleratorDesign design =
      build_design(stencil::denoise_2d(), opts);
  EXPECT_EQ(design.datapath_width, 8);
  const MemorySystem& sys = design.systems[0];
  ASSERT_EQ(sys.fifos.size(), 4u);
  EXPECT_EQ(sys.fifos[0].depth, 1023);
  EXPECT_EQ(sys.fifos[0].word_depth(8), 128);  // ceil(1023 / 8)
  EXPECT_EQ(sys.fifos[1].word_depth(8), 1);
  EXPECT_EQ(sys.fifos[3].word_depth(8), 128);
  // Padding rounds each FIFO up to whole W-element words.
  EXPECT_EQ(sys.total_buffer_size(), 2048);
  EXPECT_EQ(sys.padded_buffer_size(8), (128 + 1 + 1 + 128) * 8);
}

TEST(Builder, WidenRemapsPhysicalImplFromWordDepth) {
  // A 1023-deep FIFO is BRAM at W=1, but its 128 words fit the shift-
  // register budget once the datapath is 8 wide: the mapping must follow
  // the word depth, not the element depth.
  BuildOptions opts;
  opts.datapath_width = 8;
  opts.shift_register_max_depth = 128;
  const AcceleratorDesign design =
      build_design(stencil::denoise_2d(), opts);
  EXPECT_EQ(design.systems[0].fifos[0].impl, BufferImpl::kShiftRegister);
  EXPECT_EQ(design.systems[0].fifos[1].impl, BufferImpl::kRegister);
}

TEST(Builder, WidenRejectsOutOfRangeAndUnfillableWidths) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 16);
  BuildOptions opts;
  opts.datapath_width = 0;
  EXPECT_THROW(build_design(p, opts), Error);
  opts.datapath_width = -4;
  EXPECT_THROW(build_design(p, opts), Error);
  opts.datapath_width = kMaxDatapathWidth + 1;
  EXPECT_THROW(build_design(p, opts), Error);
  // Rows of denoise_2d(12, 16) stream ~17 cells: W=32 can never fill a
  // vector, W=16 still can.
  opts.datapath_width = 32;
  EXPECT_THROW(build_design(p, opts), Error);
  opts.datapath_width = 16;
  EXPECT_NO_THROW(build_design(p, opts));
}

TEST(Builder, WidenDefaultsToScalar) {
  const AcceleratorDesign design = build_design(stencil::denoise_2d());
  EXPECT_EQ(design.datapath_width, 1);
  for (const ReuseFifo& f : design.systems[0].fifos) {
    EXPECT_EQ(f.word_depth(1), f.depth);
  }
  EXPECT_EQ(design.systems[0].padded_buffer_size(1),
            design.systems[0].total_buffer_size());
}

TEST(Builder, DescribeMentionsWideDatapath) {
  BuildOptions opts;
  opts.datapath_width = 8;
  const AcceleratorDesign design =
      build_design(stencil::denoise_2d(), opts);
  const std::string text = describe(design);
  EXPECT_NE(text.find("W=8"), std::string::npos);
  EXPECT_NE(text.find("word"), std::string::npos);
}

TEST(Builder, DescribeMentionsEveryFifo) {
  const AcceleratorDesign design = build_design(stencil::denoise_2d());
  const std::string text = describe(design);
  EXPECT_NE(text.find("FIFO_0"), std::string::npos);
  EXPECT_NE(text.find("FIFO_3"), std::string::npos);
  EXPECT_NE(text.find("BRAM"), std::string::npos);
  EXPECT_NE(text.find("register"), std::string::npos);
}

}  // namespace
}  // namespace nup::arch
