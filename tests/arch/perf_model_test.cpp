#include "arch/perf_model.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::arch {
namespace {

void expect_exact(const stencil::StencilProgram& p) {
  const AcceleratorDesign design = build_design(p);
  const PerfPrediction pred =
      predict_performance(p, design.systems[0]);
  sim::SimOptions options;
  options.record_outputs = false;
  const sim::SimResult r = sim::simulate(p, design, options);
  EXPECT_EQ(pred.fill_latency, r.fill_latency) << p.name();
  EXPECT_EQ(pred.total_cycles, r.cycles) << p.name();
  EXPECT_DOUBLE_EQ(pred.steady_ii, r.steady_ii) << p.name();
  EXPECT_EQ(pred.iterations, r.kernel_fires) << p.name();
}

TEST(PerfModel, ExactOnRectangularGrids) {
  expect_exact(stencil::denoise_2d(24, 32));
  expect_exact(stencil::sobel_2d(20, 26));
  expect_exact(stencil::bicubic_2d(12, 40));
}

TEST(PerfModel, ExactInThreeDimensions) {
  expect_exact(stencil::heat_3d(6, 8, 10));
  expect_exact(stencil::segmentation_3d(6, 8, 10));
}

TEST(PerfModel, ExactOnNonRectangularDomains) {
  expect_exact(stencil::triangular_demo(20));
  expect_exact(stencil::jacobi_2d(14, 18));
}

TEST(PerfModel, PredictsThePaperScaleRun) {
  // Full 768x1024 DENOISE without running the simulator: 2050-cycle fill
  // (two rows plus the chain), 786431 total, II -> 1.
  const stencil::StencilProgram p = stencil::denoise_2d();
  const PerfPrediction pred =
      predict_performance(p, build_design(p).systems[0]);
  EXPECT_EQ(pred.fill_latency, 2 * 1024 + 2);
  EXPECT_EQ(pred.total_cycles, 768 * 1024 - 1);
  EXPECT_LT(pred.steady_ii, 1.01);
}

TEST(PerfModel, IiApproachesOneWithGridSize) {
  const PerfPrediction small = predict_performance(
      stencil::denoise_2d(16, 16),
      build_design(stencil::denoise_2d(16, 16)).systems[0]);
  const PerfPrediction large = predict_performance(
      stencil::denoise_2d(256, 256),
      build_design(stencil::denoise_2d(256, 256)).systems[0]);
  EXPECT_LT(large.steady_ii, small.steady_ii);
  EXPECT_LT(large.steady_ii, 1.01);
}

TEST(PerfModel, RejectsTradedDesigns) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const MemorySystem traded =
      apply_tradeoff(build_design(p).systems[0], 1);
  EXPECT_THROW(predict_performance(p, traded), Error);
}

}  // namespace
}  // namespace nup::arch
