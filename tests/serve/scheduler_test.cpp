// The serving scheduler is a pure state machine -- no threads, no locks,
// no engine -- so every admission verdict, weighted-fair dispatch order
// and affinity group composition is a deterministic function of the call
// sequence and can be pinned down exactly here.

#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace nup::serve {
namespace {

SchedItem item(std::uint64_t id, const std::string& tenant,
               std::uint64_t design_key = 0) {
  return SchedItem{id, tenant, design_key};
}

// Drains the scheduler one request at a time and returns the tenant
// dispatch order (the WFQ trace).
std::vector<std::string> drain_order(Scheduler& sched) {
  std::vector<std::string> order;
  while (sched.has_eligible()) {
    const std::vector<SchedItem> group = sched.next_group(1);
    if (group.empty()) break;
    order.push_back(group[0].tenant);
    sched.complete(group[0].tenant);
  }
  return order;
}

// ---- admission ----------------------------------------------------------

TEST(Scheduler, AdmitsUnderQuotaAndAutoRegisters) {
  SchedulerOptions options;
  options.default_quota.max_queued = 2;
  Scheduler sched(options);

  ShedReason reason = ShedReason::kNone;
  EXPECT_EQ(sched.submit(item(1, "a"), &reason), Verdict::kAdmitted);
  EXPECT_EQ(reason, ShedReason::kNone);
  EXPECT_TRUE(sched.has_tenant("a"));  // auto-registered, default quota
  EXPECT_EQ(sched.queued("a"), 1u);
  EXPECT_EQ(sched.queued(), 1u);
}

TEST(Scheduler, ShedsOnTenantQueueFull) {
  SchedulerOptions options;
  options.default_quota.max_queued = 2;
  Scheduler sched(options);

  EXPECT_EQ(sched.submit(item(1, "a")), Verdict::kAdmitted);
  EXPECT_EQ(sched.submit(item(2, "a")), Verdict::kAdmitted);

  ShedReason reason = ShedReason::kNone;
  EXPECT_EQ(sched.submit(item(3, "a"), &reason), Verdict::kShed);
  EXPECT_EQ(reason, ShedReason::kTenantQueueFull);
  EXPECT_EQ(sched.queued("a"), 2u);  // the shed request left no trace

  // Another tenant's bound is independent.
  EXPECT_EQ(sched.submit(item(4, "b"), &reason), Verdict::kAdmitted);

  // Draining one request frees exactly one queue slot.
  ASSERT_EQ(sched.next_group(1).size(), 1u);
  EXPECT_EQ(sched.submit(item(5, "a"), &reason), Verdict::kAdmitted);
  EXPECT_EQ(sched.submit(item(6, "a"), &reason), Verdict::kShed);
}

TEST(Scheduler, ShedsOnGlobalQueueFullBeforeTenantBound) {
  SchedulerOptions options;
  options.default_quota.max_queued = 64;
  options.global_queue_limit = 3;
  Scheduler sched(options);

  EXPECT_EQ(sched.submit(item(1, "a")), Verdict::kAdmitted);
  EXPECT_EQ(sched.submit(item(2, "b")), Verdict::kAdmitted);
  EXPECT_EQ(sched.submit(item(3, "c")), Verdict::kAdmitted);

  ShedReason reason = ShedReason::kNone;
  EXPECT_EQ(sched.submit(item(4, "d"), &reason), Verdict::kShed);
  EXPECT_EQ(reason, ShedReason::kGlobalQueueFull);
  EXPECT_EQ(sched.queued(), 3u);
}

TEST(Scheduler, ZeroGlobalLimitIsUnbounded) {
  SchedulerOptions options;
  options.default_quota.max_queued = 1000;
  options.global_queue_limit = 0;
  Scheduler sched(options);
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(sched.submit(item(i, "a")), Verdict::kAdmitted) << i;
  }
  EXPECT_EQ(sched.queued(), 500u);
}

// ---- weighted fair queuing ---------------------------------------------

TEST(Scheduler, EqualWeightsInterleaveInRegistrationOrder)
{
  Scheduler sched;
  for (std::uint64_t i = 0; i < 3; ++i) {
    sched.submit(item(10 + i, "a"));
    sched.submit(item(20 + i, "b"));
  }
  const std::vector<std::string> expected = {"a", "b", "a",
                                             "b", "a", "b"};
  EXPECT_EQ(drain_order(sched), expected);
}

TEST(Scheduler, WeightTwoTenantDispatchesTwicePerRound) {
  SchedulerOptions options;
  Scheduler sched(options);
  TenantQuota heavy;
  heavy.weight = 2.0;
  heavy.max_in_flight = 100;
  TenantQuota light;
  light.weight = 1.0;
  light.max_in_flight = 100;
  sched.register_tenant("heavy", heavy);
  sched.register_tenant("light", light);
  for (std::uint64_t i = 0; i < 6; ++i) {
    sched.submit(item(i, "heavy"));
  }
  for (std::uint64_t i = 6; i < 9; ++i) {
    sched.submit(item(i, "light"));
  }

  // Stride scheduling at 2:1 -- the heavy tenant's pass advances by 0.5
  // per dispatch, the light one's by 1.0, so the steady-state trace
  // serves heavy twice per light dispatch.
  const std::vector<std::string> order = drain_order(sched);
  ASSERT_EQ(order.size(), 9u);
  int heavy_first6 = 0;
  for (int i = 0; i < 6; ++i) heavy_first6 += order[i] == "heavy";
  EXPECT_EQ(heavy_first6, 4) << "2:1 weights should serve heavy 4 of 6";
}

TEST(Scheduler, IdleTenantBanksNoCredit) {
  Scheduler sched;
  sched.register_tenant("busy", TenantQuota{});
  sched.register_tenant("idle", TenantQuota{});

  // `busy` runs alone for a while, advancing the virtual time.
  for (std::uint64_t i = 0; i < 4; ++i) sched.submit(item(i, "busy"));
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(sched.next_group(1)[0].tenant, "busy");
    sched.complete("busy");
  }

  // When `idle` finally submits it rejoins at the current virtual time
  // instead of replaying its banked zero pass: the trace interleaves
  // fairly from here on rather than serving `idle` four times in a row.
  for (std::uint64_t i = 0; i < 3; ++i) {
    sched.submit(item(10 + i, "idle"));
    sched.submit(item(20 + i, "busy"));
  }
  const std::vector<std::string> order = drain_order(sched);
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i + 1 < 6; i += 2) {
    EXPECT_NE(order[i], order[i + 1]) << "burst at position " << i;
  }
}

TEST(Scheduler, InFlightQuotaMakesTenantIneligible) {
  SchedulerOptions options;
  options.default_quota.max_in_flight = 1;
  Scheduler sched(options);
  sched.submit(item(1, "a"));
  sched.submit(item(2, "a"));
  sched.submit(item(3, "b"));

  ASSERT_EQ(sched.next_group(1)[0].id, 1u);
  EXPECT_EQ(sched.in_flight("a"), 1u);

  // `a` is at max_in_flight: despite holding the lower pass and queued
  // work, the next dispatch must come from `b`.
  ASSERT_EQ(sched.next_group(1)[0].tenant, "b");

  // Both at quota: nothing is eligible even though work is queued.
  EXPECT_FALSE(sched.has_eligible());
  EXPECT_TRUE(sched.next_group(4).empty());
  EXPECT_EQ(sched.queued(), 1u);

  // complete() releases the slot and re-arms eligibility.
  sched.complete("a");
  ASSERT_TRUE(sched.has_eligible());
  EXPECT_EQ(sched.next_group(1)[0].id, 2u);
}

// ---- dispatch groups ----------------------------------------------------

TEST(Scheduler, AffinityGroupGathersLeaderDesignAcrossTenants) {
  SchedulerOptions options;
  options.policy = Policy::kAffinity;
  Scheduler sched(options);
  // Tenant a: designs X X Y; tenant b: Y X; tenant c: X.
  sched.submit(item(1, "a", /*design_key=*/7));
  sched.submit(item(2, "a", 7));
  sched.submit(item(3, "a", 9));
  sched.submit(item(4, "b", 9));
  sched.submit(item(5, "b", 7));
  sched.submit(item(6, "c", 7));

  // Leader is a's head (design 7); the group gathers every design-7
  // request -- including b's *second* queued item, skipping past its
  // design-9 head without reordering it away.
  const std::vector<SchedItem> group = sched.next_group(8);
  ASSERT_EQ(group.size(), 4u);
  for (const SchedItem& it : group) EXPECT_EQ(it.design_key, 7u);
  std::vector<std::uint64_t> ids;
  for (const SchedItem& it : group) ids.push_back(it.id);
  EXPECT_EQ(ids[0], 1u);  // the WFQ leader comes first
  EXPECT_NE(std::find(ids.begin(), ids.end(), 5u), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 6u), ids.end());

  // The design-9 requests survive untouched, in order.
  EXPECT_EQ(sched.queued("a"), 1u);
  EXPECT_EQ(sched.queued("b"), 1u);
  const std::vector<SchedItem> next = sched.next_group(8);
  ASSERT_EQ(next.size(), 2u);
  for (const SchedItem& it : next) EXPECT_EQ(it.design_key, 9u);
}

TEST(Scheduler, AffinityGroupRespectsInFlightQuota) {
  SchedulerOptions options;
  options.policy = Policy::kAffinity;
  options.default_quota.max_in_flight = 1;
  Scheduler sched(options);
  sched.submit(item(1, "a", 7));
  sched.submit(item(2, "a", 7));  // same design, same tenant
  sched.submit(item(3, "b", 7));

  // The group may take one request per tenant: a's second design-7
  // request would exceed its in-flight quota.
  const std::vector<SchedItem> group = sched.next_group(8);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].id, 1u);
  EXPECT_EQ(group[1].id, 3u);
  EXPECT_EQ(sched.queued("a"), 1u);
}

TEST(Scheduler, RoundRobinGroupingIsDesignBlind) {
  SchedulerOptions options;
  options.policy = Policy::kRoundRobin;
  Scheduler sched(options);
  sched.submit(item(1, "a", 7));
  sched.submit(item(2, "a", 7));
  sched.submit(item(3, "b", 9));

  // Pure WFQ order: a, b, a -- the design keys play no role.
  const std::vector<SchedItem> group = sched.next_group(3);
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0].id, 1u);
  EXPECT_EQ(group[1].id, 3u);
  EXPECT_EQ(group[2].id, 2u);
}

TEST(Scheduler, GroupSizeIsBoundedByMaxSize) {
  Scheduler sched;
  for (std::uint64_t i = 0; i < 6; ++i) sched.submit(item(i, "a", 1));
  EXPECT_EQ(sched.next_group(0).size(), 0u);
  EXPECT_EQ(sched.next_group(2).size(), 2u);
  EXPECT_EQ(sched.queued("a"), 4u);
}

// ---- lifecycle ----------------------------------------------------------

TEST(Scheduler, DropTenantReturnsQueuedKeepsInFlight) {
  Scheduler sched;
  sched.submit(item(1, "a", 7));
  sched.submit(item(2, "a", 7));
  sched.submit(item(3, "b", 7));
  ASSERT_EQ(sched.next_group(1)[0].id, 1u);  // id 1 now in flight

  const std::vector<SchedItem> dropped = sched.drop_tenant("a");
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].id, 2u);
  EXPECT_EQ(sched.queued("a"), 0u);
  EXPECT_EQ(sched.in_flight("a"), 1u);  // the dispatched one is untouched
  EXPECT_EQ(sched.queued(), 1u);        // b's request survives

  // The in-flight request still completes through the normal path, and
  // the tenant may submit again afterwards.
  sched.complete("a");
  EXPECT_EQ(sched.in_flight("a"), 0u);
  EXPECT_EQ(sched.submit(item(9, "a", 7)), Verdict::kAdmitted);
}

TEST(Scheduler, CompleteWithoutDispatchThrows) {
  Scheduler sched;
  sched.register_tenant("a", TenantQuota{});
  EXPECT_THROW(sched.complete("a"), Error);        // nothing dispatched
  EXPECT_THROW(sched.complete("ghost"), Error);    // unknown tenant
}

TEST(Scheduler, ReQuotaKeepsQueuedWork) {
  Scheduler sched;
  sched.submit(item(1, "a"));
  sched.submit(item(2, "a"));
  TenantQuota tight;
  tight.max_queued = 1;  // below the current occupancy
  sched.register_tenant("a", tight);
  EXPECT_EQ(sched.queued("a"), 2u);  // nothing dropped retroactively
  EXPECT_EQ(sched.submit(item(3, "a")), Verdict::kShed);  // new bound holds
  ASSERT_EQ(sched.next_group(2).size(), 2u);  // queued work still drains
}

}  // namespace
}  // namespace nup::serve
