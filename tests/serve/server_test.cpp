// StencilServer end-to-end: multi-tenant serving over one FrameEngine
// must be bit-identical to frame-serial golden execution for every tenant
// and every design in the mix; admission must shed exactly when a quota
// is exceeded (never under it); and the design-pinning dispatcher must
// leave no pins behind after cancellations, mid-flight disconnects and
// shutdown.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::serve {
namespace {

using std::chrono::milliseconds;

// A program whose kernel sleeps: frames take real wall time, so queue
// occupancy (and with it shed verdicts) is deterministic to stage. The
// sleep does not change values, so golden comparison still holds.
stencil::StencilProgram slow_program(std::int64_t rows, std::int64_t cols,
                                     milliseconds per_fire) {
  stencil::StencilProgram p("SLOW",
                            poly::Domain::box({1, 1}, {rows - 2, cols - 2}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel([per_fire](const std::vector<double>& v) {
    std::this_thread::sleep_for(per_fire);
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  return p;
}

// Spin until the server reports exactly one dispatched frame and an
// empty queue -- the staging point every shed test builds on.
void wait_one_in_flight(StencilServer& server) {
  for (int i = 0; i < 2000; ++i) {
    const ServeStats s = server.stats();
    if (s.in_flight == 1 && s.queued == 0) return;
    std::this_thread::sleep_for(milliseconds(1));
  }
  FAIL() << "request never reached the engine";
}

// ---- bit-identity -------------------------------------------------------

TEST(StencilServer, TenantsTimesDesignsBitIdenticalToFrameSerial) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::jacobi_2d(24, 32), stencil::blur_2d(24, 32),
      stencil::denoise_2d(24, 32)};

  ServeOptions options;
  options.engine.threads = 4;
  options.engine.tile_shape = {8, 0};
  options.max_frames_in_flight = 4;
  options.policy = Policy::kAffinity;
  StencilServer server(options);
  for (const stencil::StencilProgram& p : programs) server.add_kernel(p);

  constexpr int kTenants = 3;
  constexpr std::uint64_t kSeedsPerPair = 3;
  std::vector<ServeClient> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back(server, "tenant" + std::to_string(t));
  }

  // Every tenant submits every design with tenant-distinct seeds -- a
  // shuffled mix the affinity dispatcher is free to regroup.
  struct Expected {
    std::size_t program;
    std::uint64_t seed;
    RequestHandle handle;
  };
  std::vector<Expected> expected;
  for (int t = 0; t < kTenants; ++t) {
    for (std::size_t p = 0; p < programs.size(); ++p) {
      for (std::uint64_t s = 0; s < kSeedsPerPair; ++s) {
        const std::uint64_t seed = 100 * t + 10 * p + s;
        SubmitResult r =
            clients[t].submit(programs[p].name(), seed);
        ASSERT_TRUE(r.admitted()) << to_string(r.reason);
        expected.push_back(Expected{p, seed, r.handle});
      }
    }
  }

  // Regrouping may change execution order but never bits: every frame is
  // bit-identical to a frame-serial golden run of its (program, seed).
  for (Expected& e : expected) {
    const runtime::FrameResult& result = e.handle.wait();
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.outputs,
              stencil::run_golden(programs[e.program], e.seed).outputs)
        << programs[e.program].name() << " seed " << e.seed;
    EXPECT_GE(e.handle.queue_us(), 0);
  }

  const ServeStats stats = server.stats();
  const std::int64_t total =
      static_cast<std::int64_t>(expected.size());
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.admitted, total);
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.shed, 0);  // under quota nothing sheds
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GE(stats.groups, 1);
  // Affinity batching switches designs at most once per group -- never
  // once per frame.
  EXPECT_LE(stats.design_switches, stats.groups);
  EXPECT_LT(stats.design_switches, total);

  for (int t = 0; t < kTenants; ++t) {
    const TenantStats ts = server.tenant_stats(clients[t].tenant());
    EXPECT_EQ(ts.submitted, total / kTenants);
    EXPECT_EQ(ts.completed, total / kTenants);
    EXPECT_EQ(ts.shed, 0);
  }

  server.shutdown();
  const runtime::DesignCacheStats cache = server.engine().stats().cache;
  EXPECT_EQ(cache.pinned, 0u) << "shutdown left designs pinned";
  EXPECT_EQ(cache.pins, cache.unpins);
}

TEST(StencilServer, RoundRobinPolicyIsBitIdenticalToo) {
  ServeOptions options;
  options.engine.threads = 2;
  options.engine.tile_shape = {8, 0};
  options.policy = Policy::kRoundRobin;
  StencilServer server(options);
  const stencil::StencilProgram a = stencil::jacobi_2d(20, 24);
  const stencil::StencilProgram b = stencil::blur_2d(20, 24);
  server.add_kernel(a);
  server.add_kernel(b);

  std::vector<RequestHandle> handles;
  for (std::uint64_t s = 0; s < 4; ++s) {
    handles.push_back(server.submit("t", a.name(), s).handle);
    handles.push_back(server.submit("t", b.name(), s).handle);
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const runtime::FrameResult& r = handles[i].wait();
    ASSERT_TRUE(r.ok()) << r.error;
    const stencil::StencilProgram& p = i % 2 == 0 ? a : b;
    EXPECT_EQ(r.outputs, stencil::run_golden(p, i / 2).outputs);
  }
}

// ---- admission and load shedding ---------------------------------------

TEST(StencilServer, ShedsOnlyPastTenantQuota) {
  ServeOptions options;
  options.engine.threads = 1;
  options.engine.tile_shape = {0, 0};  // one tile per frame
  TenantQuota quota;
  quota.max_in_flight = 1;
  quota.max_queued = 2;
  options.default_quota = quota;
  StencilServer server(options);
  server.add_kernel(slow_program(10, 12, milliseconds(1)));

  // Stage: one slow frame on the engine, an empty queue.
  SubmitResult running = server.submit("a", "SLOW", 1);
  ASSERT_TRUE(running.admitted());
  wait_one_in_flight(server);

  // Under quota: exactly max_queued more requests are admitted...
  SubmitResult q1 = server.submit("a", "SLOW", 2);
  SubmitResult q2 = server.submit("a", "SLOW", 3);
  EXPECT_TRUE(q1.admitted());
  EXPECT_TRUE(q2.admitted());

  // ...and one past it sheds with the tenant-queue verdict. The shed
  // request gets no handle and leaves no queue entry behind.
  SubmitResult shed = server.submit("a", "SLOW", 4);
  EXPECT_EQ(shed.verdict, Verdict::kShed);
  EXPECT_EQ(shed.reason, ShedReason::kTenantQueueFull);
  EXPECT_FALSE(shed.handle.valid());

  // Another tenant is not affected by a's full queue.
  SubmitResult other = server.submit("b", "SLOW", 5);
  EXPECT_TRUE(other.admitted());

  for (RequestHandle* h : {&running.handle, &q1.handle, &q2.handle,
                           &other.handle}) {
    EXPECT_TRUE(h->wait().ok()) << h->wait().error;
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 5);
  EXPECT_EQ(stats.admitted, 4);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(server.tenant_stats("a").shed, 1);
  EXPECT_EQ(server.tenant_stats("b").shed, 0);
}

TEST(StencilServer, ShedsOnGlobalQueueLimit) {
  ServeOptions options;
  options.engine.threads = 1;
  options.engine.tile_shape = {0, 0};
  TenantQuota roomy;
  roomy.max_in_flight = 1;
  roomy.max_queued = 64;
  options.default_quota = roomy;
  options.global_queue_limit = 1;
  StencilServer server(options);
  server.add_kernel(slow_program(10, 12, milliseconds(1)));

  SubmitResult running = server.submit("a", "SLOW", 1);
  ASSERT_TRUE(running.admitted());
  wait_one_in_flight(server);

  SubmitResult queued = server.submit("a", "SLOW", 2);
  ASSERT_TRUE(queued.admitted());
  SubmitResult shed = server.submit("b", "SLOW", 3);
  EXPECT_EQ(shed.verdict, Verdict::kShed);
  EXPECT_EQ(shed.reason, ShedReason::kGlobalQueueFull);

  EXPECT_TRUE(running.handle.wait().ok());
  EXPECT_TRUE(queued.handle.wait().ok());
}

TEST(StencilServer, UnknownKernelThrows) {
  StencilServer server;
  EXPECT_THROW(server.submit("a", "NO_SUCH_KERNEL", 1), Error);
}

TEST(StencilServer, ShutdownShedsNewSubmits) {
  ServeOptions options;
  options.engine.threads = 1;
  StencilServer server(options);
  server.add_kernel(stencil::jacobi_2d(16, 20));
  server.shutdown();

  SubmitResult r = server.submit("a", "JACOBI_2D", 1);
  EXPECT_EQ(r.verdict, Verdict::kShed);
  EXPECT_EQ(r.reason, ShedReason::kShuttingDown);
  EXPECT_FALSE(r.handle.valid());
}

// ---- cancellation and disconnect ---------------------------------------

TEST(StencilServer, CancelQueuedResolvesWithoutTouchingEngine) {
  ServeOptions options;
  options.engine.threads = 1;
  options.engine.tile_shape = {0, 0};
  TenantQuota quota;
  quota.max_in_flight = 1;
  options.default_quota = quota;
  StencilServer server(options);
  server.add_kernel(slow_program(10, 12, milliseconds(1)));

  SubmitResult running = server.submit("a", "SLOW", 1);
  ASSERT_TRUE(running.admitted());
  wait_one_in_flight(server);
  SubmitResult queued = server.submit("a", "SLOW", 2);
  ASSERT_TRUE(queued.admitted());

  queued.handle.cancel();
  const runtime::FrameResult& cancelled = queued.handle.wait();
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_FALSE(cancelled.ok());
  EXPECT_FALSE(queued.handle.wait_admitted());  // it never dispatched
  EXPECT_EQ(queued.handle.queue_us(), -1);

  EXPECT_TRUE(running.handle.wait().ok());
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.cancelled, 1);
  // The cancelled request never became an engine frame.
  EXPECT_EQ(server.engine().stats().frames_submitted, 1);
}

TEST(StencilServer, CancelRunningFrameAfterAdmission) {
  ServeOptions options;
  options.engine.threads = 1;
  options.engine.tile_shape = {1, 0};  // many tiles: cancel lands mid-frame
  StencilServer server(options);
  server.add_kernel(slow_program(12, 10, milliseconds(1)));

  SubmitResult r = server.submit("a", "SLOW", 7);
  ASSERT_TRUE(r.admitted());
  ASSERT_TRUE(r.handle.wait_admitted());  // reached the engine
  r.handle.cancel();
  const runtime::FrameResult& result = r.handle.wait();
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(server.stats().cancelled, 1);
  EXPECT_EQ(server.engine().stats().frames_cancelled, 1);
}

TEST(StencilServer, MidFlightDisconnectLeavesNoPinsAndNoHangs) {
  ServeOptions options;
  options.engine.threads = 2;
  options.engine.tile_shape = {2, 0};
  TenantQuota quota;
  quota.max_in_flight = 2;
  quota.max_queued = 64;
  options.default_quota = quota;
  options.max_frames_in_flight = 2;
  StencilServer server(options);
  // Two distinct designs so the disconnect lands while designs are
  // pinned and group switches are happening.
  server.add_kernel(slow_program(12, 10, milliseconds(1)));
  server.add_kernel(stencil::jacobi_2d(20, 24));

  ServeClient doomed(server, "doomed", quota);
  ServeClient survivor(server, "survivor", quota);
  for (std::uint64_t s = 0; s < 6; ++s) {
    doomed.submit(s % 2 == 0 ? "SLOW" : "JACOBI_2D", s);
    survivor.submit(s % 2 == 0 ? "JACOBI_2D" : "SLOW", s);
  }

  // The tenant vanishes with work queued and frames running.
  doomed.disconnect();

  // Every handle of the doomed tenant still resolves -- cancelled or
  // with whatever completed first -- and the survivor is untouched.
  for (RequestHandle h : doomed.outstanding()) {
    const runtime::FrameResult& r = h.wait();
    EXPECT_TRUE(r.ok() || r.cancelled) << r.error;
  }
  EXPECT_EQ(survivor.wait_all(), 6u);
  EXPECT_EQ(server.tenant_stats("survivor").completed, 6);

  // A disconnected tenant may come back.
  SubmitResult back = server.submit("doomed", "JACOBI_2D", 99);
  ASSERT_TRUE(back.admitted());
  EXPECT_TRUE(back.handle.wait().ok());

  server.shutdown();
  const runtime::DesignCacheStats cache = server.engine().stats().cache;
  EXPECT_EQ(cache.pinned, 0u) << "disconnect leaked design pins";
  EXPECT_EQ(cache.pins, cache.unpins);
}

TEST(StencilServer, ShutdownResolvesQueuedWorkAsCancelled) {
  ServeOptions options;
  options.engine.threads = 1;
  options.engine.tile_shape = {0, 0};
  TenantQuota quota;
  quota.max_in_flight = 1;
  options.default_quota = quota;
  StencilServer server(options);
  server.add_kernel(slow_program(10, 12, milliseconds(1)));

  SubmitResult running = server.submit("a", "SLOW", 1);
  ASSERT_TRUE(running.admitted());
  wait_one_in_flight(server);
  SubmitResult queued = server.submit("a", "SLOW", 2);
  ASSERT_TRUE(queued.admitted());

  server.shutdown();
  EXPECT_TRUE(running.handle.done());
  EXPECT_TRUE(queued.handle.done());
  // The dispatched frame drains; the queued one resolves cancelled
  // without ever reaching the engine.
  EXPECT_TRUE(running.handle.wait().ok() ||
              running.handle.wait().cancelled);
  EXPECT_TRUE(queued.handle.wait().cancelled);
  EXPECT_EQ(server.engine().stats().cache.pinned, 0u);
}

// ---- observability ------------------------------------------------------

TEST(StencilServer, MetricsRegistryAndTenantLabelFolding) {
  obs::Registry registry;
  ServeOptions options;
  options.engine.threads = 2;
  options.engine.tile_shape = {8, 0};
  options.metrics = &registry;
  StencilServer server(options);
  server.add_kernel(stencil::jacobi_2d(20, 24));
  server.add_kernel(stencil::blur_2d(20, 24));

  ServeClient a(server, "alpha");
  ServeClient b(server, "beta");
  for (std::uint64_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(a.submit("JACOBI_2D", s).admitted());
    ASSERT_TRUE(b.submit("BLUR_3x3", s).admitted());
  }
  EXPECT_EQ(a.wait_all(), 3u);
  EXPECT_EQ(b.wait_all(), 3u);

  const ServeStats stats = server.stats();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("serve.submitted"), stats.submitted);
  EXPECT_EQ(snap.value_of("serve.admitted"), stats.admitted);
  EXPECT_EQ(snap.value_of("serve.completed"), stats.completed);
  EXPECT_EQ(snap.value_of("serve.shed"), 0);
  EXPECT_EQ(snap.value_of("serve.groups"), stats.groups);
  EXPECT_EQ(snap.value_of("serve.design_switches"),
            stats.design_switches);
  EXPECT_EQ(snap.value_of("serve.tenant.alpha.submitted"), 3);
  EXPECT_EQ(snap.value_of("serve.tenant.beta.completed"), 3);
  // SLO histograms: one queue-time observation per dispatched request,
  // one frame-time observation per resolved frame.
  EXPECT_EQ(registry.histogram("serve.queue_us").snapshot().count,
            stats.admitted);
  EXPECT_EQ(registry.histogram("serve.frame_us").snapshot().count,
            stats.completed);

  // The exposition folds per-tenant series into one family with a
  // tenant label (not one family per tenant).
  const std::string expo = registry.snapshot_openmetrics();
  EXPECT_NE(expo.find("# TYPE serve_tenant_submitted counter"),
            std::string::npos)
      << expo;
  EXPECT_NE(expo.find("serve_tenant_submitted_total{tenant=\"alpha\"} 3"),
            std::string::npos);
  EXPECT_NE(expo.find("serve_tenant_submitted_total{tenant=\"beta\"} 3"),
            std::string::npos);
  EXPECT_EQ(expo.find("serve_tenant_alpha"), std::string::npos)
      << "tenant name leaked into a family name";
}

TEST(StencilServer, NamedInstanceNamespacesItsMetrics) {
  obs::Registry registry;
  ServeOptions options;
  options.name = "edge";
  options.engine.threads = 1;
  options.metrics = &registry;
  StencilServer server(options);
  server.add_kernel(stencil::jacobi_2d(16, 20));
  SubmitResult r = server.submit("a", "JACOBI_2D", 1);
  ASSERT_TRUE(r.admitted());
  ASSERT_TRUE(r.handle.wait().ok());

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("serve.edge.completed"), 1);
  EXPECT_EQ(snap.value_of("serve.edge.tenant.a.completed"), 1);
  // The embedded engine inherits the instance name.
  EXPECT_EQ(snap.value_of("engine.edge.frames_completed"), 1);

  const std::string expo = registry.snapshot_openmetrics();
  EXPECT_NE(
      expo.find("serve_edge_tenant_completed_total{tenant=\"a\"} 1"),
      std::string::npos)
      << expo;
}

}  // namespace
}  // namespace nup::serve
