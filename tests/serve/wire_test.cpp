// The line-protocol front-end: a remote tenant session over a loopback
// socket must behave exactly like the in-process client -- same verdicts,
// same results (verified through the shipped checksum against a local
// golden run) -- and a connection that drops without QUIT must cancel the
// tenant's work without leaking pins or hanging the server.

#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/socket.hpp"

namespace nup::serve {
namespace {

using std::chrono::milliseconds;

stencil::StencilProgram slow_program(std::int64_t rows, std::int64_t cols,
                                     milliseconds per_fire) {
  stencil::StencilProgram p("SLOW",
                            poly::Domain::box({1, 1}, {rows - 2, cols - 2}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel([per_fire](const std::vector<double>& v) {
    std::this_thread::sleep_for(per_fire);
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  return p;
}

/// One protocol session: send a command line, read the one reply line.
class WireClient {
 public:
  explicit WireClient(int port)
      : fd_(util::connect_loopback(port)), reader_(fd_) {}
  ~WireClient() { close(); }

  bool connected() const { return fd_ >= 0; }

  std::string command(const std::string& line) {
    EXPECT_TRUE(util::write_all(fd_, line + "\n")) << line;
    std::string reply;
    EXPECT_TRUE(reader_.next_line(&reply)) << "no reply to " << line;
    return reply;
  }

  /// Hard drop: closes the socket without QUIT (a vanished tenant).
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
  util::LineReader reader_;
};

std::vector<std::string> words_of(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(std::move(word));
  return words;
}

TEST(ServeEndpoint, HelloSubmitWaitShipsGoldenChecksum) {
  const stencil::StencilProgram p = stencil::jacobi_2d(20, 24);
  ServeOptions options;
  options.engine.threads = 2;
  StencilServer server(options);
  server.add_kernel(p);
  ServeEndpoint endpoint(server);
  ASSERT_TRUE(endpoint.ok()) << endpoint.error();
  ASSERT_GT(endpoint.port(), 0);  // ephemeral bind reports the pick

  WireClient client(endpoint.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.command("HELLO remote"), "OK remote");

  const std::string submitted = client.command("SUBMIT JACOBI_2D 5");
  const std::vector<std::string> ok = words_of(submitted);
  ASSERT_EQ(ok.size(), 2u) << submitted;
  ASSERT_EQ(ok[0], "OK");

  const std::string done = client.command("WAIT " + ok[1]);
  const std::vector<std::string> reply = words_of(done);
  ASSERT_EQ(reply.size(), 5u) << done;
  EXPECT_EQ(reply[0], "DONE");
  EXPECT_EQ(reply[1], ok[1]);
  EXPECT_EQ(reply[2], "ok");

  // The shipped checksum is the remote client's bit-identity proof: it
  // must equal the FNV-1a hash of a local frame-serial golden run.
  const stencil::GoldenRun golden = stencil::run_golden(p, 5);
  EXPECT_EQ(reply[3], std::to_string(golden.outputs.size()));
  EXPECT_EQ(reply[4], std::to_string(output_checksum(golden.outputs)));

  EXPECT_EQ(client.command("QUIT"), "OK bye");
}

TEST(ServeEndpoint, KernelsStatsAndErrReplies) {
  ServeOptions options;
  options.engine.threads = 1;
  StencilServer server(options);
  server.add_kernel(stencil::jacobi_2d(16, 20));
  server.add_kernel(stencil::blur_2d(16, 20));
  ServeEndpoint endpoint(server);
  ASSERT_TRUE(endpoint.ok()) << endpoint.error();

  WireClient client(endpoint.port());
  ASSERT_TRUE(client.connected());

  // A session must introduce itself before submitting.
  EXPECT_EQ(client.command("SUBMIT JACOBI_2D 1"), "ERR HELLO first");
  EXPECT_EQ(client.command("HELLO t"), "OK t");

  // Malformed input answers ERR and keeps the connection usable.
  EXPECT_EQ(client.command("FROB"), "ERR unknown command FROB");
  EXPECT_EQ(client.command("SUBMIT JACOBI_2D not_a_seed"),
            "ERR usage: SUBMIT <kernel> <seed>");
  const std::string unknown = client.command("SUBMIT NO_SUCH 1");
  EXPECT_EQ(unknown.rfind("ERR ", 0), 0u) << unknown;
  EXPECT_EQ(client.command("WAIT 424242"), "ERR unknown request 424242");

  const std::string kernels = client.command("KERNELS");
  EXPECT_NE(kernels.find("JACOBI_2D"), std::string::npos) << kernels;
  EXPECT_NE(kernels.find("BLUR_3x3"), std::string::npos) << kernels;

  const std::string submitted = client.command("SUBMIT BLUR_3x3 3");
  ASSERT_EQ(words_of(submitted)[0], "OK") << submitted;
  client.command("WAIT " + words_of(submitted)[1]);

  const std::string stats = client.command("STATS");
  EXPECT_NE(stats.find("submitted=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("completed=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("shed=0"), std::string::npos) << stats;
  EXPECT_EQ(client.command("QUIT"), "OK bye");
}

TEST(ServeEndpoint, ShedVerdictCrossesTheWire) {
  ServeOptions options;
  options.engine.threads = 1;
  options.engine.tile_shape = {0, 0};
  options.max_frames_in_flight = 1;
  options.global_queue_limit = 1;
  StencilServer server(options);
  server.add_kernel(slow_program(10, 12, milliseconds(1)));
  ServeEndpoint endpoint(server);
  ASSERT_TRUE(endpoint.ok()) << endpoint.error();

  WireClient client(endpoint.port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.command("HELLO greedy"), "OK greedy");

  const std::string first = client.command("SUBMIT SLOW 1");
  ASSERT_EQ(words_of(first)[0], "OK") << first;
  // Wait until the first request is on the engine (inflight=1 queued=0),
  // so the next two submits deterministically fill and overflow the
  // global queue bound.
  for (int i = 0; i < 2000; ++i) {
    const ServeStats s = server.stats();
    if (s.in_flight == 1 && s.queued == 0) break;
    std::this_thread::sleep_for(milliseconds(1));
  }
  const std::string second = client.command("SUBMIT SLOW 2");
  ASSERT_EQ(words_of(second)[0], "OK") << second;
  EXPECT_EQ(client.command("SUBMIT SLOW 3"), "SHED global_queue_full");

  client.command("WAIT " + words_of(first)[1]);
  client.command("WAIT " + words_of(second)[1]);
  EXPECT_EQ(client.command("QUIT"), "OK bye");
  EXPECT_EQ(server.stats().shed, 1);
}

TEST(ServeEndpoint, DroppedConnectionCancelsTheTenant) {
  ServeOptions options;
  options.engine.threads = 1;
  options.engine.tile_shape = {1, 0};  // many tiles: cancel lands mid-frame
  options.max_frames_in_flight = 1;
  StencilServer server(options);
  server.add_kernel(slow_program(16, 10, milliseconds(1)));
  ServeEndpoint endpoint(server);
  ASSERT_TRUE(endpoint.ok()) << endpoint.error();

  {
    WireClient client(endpoint.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.command("HELLO doomed"), "OK doomed");
    for (int i = 1; i <= 3; ++i) {
      const std::string r =
          client.command("SUBMIT SLOW " + std::to_string(i));
      ASSERT_EQ(words_of(r)[0], "OK") << r;
    }
    client.close();  // EOF without QUIT: the tenant vanished
  }

  // The endpoint notices the EOF and disconnects the tenant: every
  // admitted request resolves (cancelled, or completed if it won the
  // race), and nothing stays queued or in flight.
  for (int i = 0; i < 5000; ++i) {
    const ServeStats s = server.stats();
    if (s.completed + s.cancelled + s.failed == 3 && s.in_flight == 0 &&
        s.queued == 0) {
      break;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed + stats.cancelled + stats.failed, 3);
  EXPECT_GE(stats.cancelled, 1);  // the queued tail could never all finish
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.in_flight, 0u);

  endpoint.stop();
  server.shutdown();
  const runtime::DesignCacheStats cache = server.engine().stats().cache;
  EXPECT_EQ(cache.pinned, 0u) << "dropped connection leaked design pins";
  EXPECT_EQ(cache.pins, cache.unpins);
}

TEST(ServeEndpoint, QuitLeavesOutstandingWorkRunning) {
  ServeOptions options;
  options.engine.threads = 1;
  StencilServer server(options);
  server.add_kernel(stencil::jacobi_2d(16, 20));
  ServeEndpoint endpoint(server);
  ASSERT_TRUE(endpoint.ok()) << endpoint.error();

  {
    WireClient client(endpoint.port());
    ASSERT_TRUE(client.connected());
    client.command("HELLO polite");
    ASSERT_EQ(words_of(client.command("SUBMIT JACOBI_2D 1"))[0], "OK");
    EXPECT_EQ(client.command("QUIT"), "OK bye");
  }

  // QUIT is not a disconnect: the submitted frame completes.
  for (int i = 0; i < 5000 && server.stats().completed < 1; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(server.stats().completed, 1);
  EXPECT_EQ(server.stats().cancelled, 0);
}

TEST(ServeEndpoint, BindFailureNamesThePort) {
  // Occupy a port, then ask the endpoint for the same one.
  util::LoopbackListener taken(0);
  ASSERT_TRUE(taken.ok());

  StencilServer server;
  ServeEndpointOptions options;
  options.port = taken.port();
  ServeEndpoint endpoint(server, options);
  EXPECT_FALSE(endpoint.ok());
  EXPECT_NE(endpoint.error().find(std::to_string(taken.port())),
            std::string::npos)
      << endpoint.error();
}

}  // namespace
}  // namespace nup::serve
