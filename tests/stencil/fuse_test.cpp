#include "stencil/fuse.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "sim/pipeline.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::stencil {
namespace {

StencilProgram smoother(const std::string& name, std::int64_t lo,
                        std::int64_t rows, std::int64_t cols,
                        const std::string& array) {
  StencilProgram p(name,
                   poly::Domain::box({lo, lo}, {rows - 1 - lo,
                                                cols - 1 - lo}));
  p.add_input(array, {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel(make_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2}));
  return p;
}

TEST(Fuse, WindowIsMinkowskiSum) {
  const StencilProgram s1 = smoother("S1", 1, 20, 20, "A");
  const StencilProgram s2 = smoother("S2", 2, 20, 20, "B");
  const StencilProgram fused = fuse(s1, s2);
  // Two 5-point von Neumann windows fuse into the 13-point radius-2
  // diamond.
  EXPECT_EQ(fused.total_references(), 13u);
  EXPECT_EQ(fused.iteration().count(), s2.iteration().count());
}

TEST(Fuse, OutputsMatchTheTwoStagePipeline) {
  const StencilProgram s1 = smoother("S1", 1, 14, 16, "A");
  const StencilProgram s2 = smoother("S2", 2, 14, 16, "B");
  const StencilProgram fused = fuse(s1, s2);

  sim::Pipeline pipeline;
  pipeline.add_stage(s1);
  pipeline.add_stage(s2);
  const sim::Pipeline::Result two_stage = pipeline.run();
  ASSERT_TRUE(two_stage.completed);

  const GoldenRun one_pass = run_golden(fused, 1);
  ASSERT_EQ(one_pass.outputs.size(), two_stage.outputs.size());
  for (std::size_t i = 0; i < one_pass.outputs.size(); ++i) {
    EXPECT_NEAR(one_pass.outputs[i], two_stage.outputs[i], 1e-12)
        << "output " << i;
  }
}

TEST(Fuse, FusedProgramRunsOnTheAccelerator) {
  const StencilProgram fused = fuse(smoother("S1", 1, 16, 18, "A"),
                                    smoother("S2", 2, 16, 18, "B"));
  const arch::AcceleratorDesign design = arch::build_design(fused);
  // 13-point window -> 12 banks, still the minimum.
  EXPECT_EQ(design.systems[0].bank_count(), 12u);
  const sim::SimResult r = sim::simulate(fused, design, {});
  ASSERT_FALSE(r.deadlocked) << r.deadlock_detail;
  const GoldenRun golden = run_golden(fused, 1);
  ASSERT_EQ(r.outputs.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(r.outputs[i], golden.outputs[i]);
  }
}

TEST(Fuse, LargeFusedWindowStillBeatsUniformPartitioning) {
  // The paper's motivation: fusion makes windows large, port contention
  // worse, and the non-uniform chain more valuable.
  const StencilProgram fused = fuse(smoother("S1", 1, 64, 96, "A"),
                                    smoother("S2", 2, 64, 96, "B"));
  const std::size_t n = fused.total_references();
  EXPECT_EQ(arch::build_design(fused).systems[0].bank_count(), n - 1);
  EXPECT_GE(baseline::gmp_partition(fused, 0).banks, n);
}

TEST(Fuse, TripleFusion) {
  const StencilProgram s1 = smoother("S1", 1, 20, 20, "A");
  const StencilProgram s2 = smoother("S2", 2, 20, 20, "B");
  const StencilProgram s3 = smoother("S3", 3, 20, 20, "C");
  const StencilProgram fused = fuse(fuse(s1, s2), s3);
  // Radius-3 diamond: 25 points.
  EXPECT_EQ(fused.total_references(), 25u);
  const GoldenRun golden = run_golden(fused, 1);
  EXPECT_EQ(static_cast<std::int64_t>(golden.outputs.size()),
            s3.iteration().count());
}

TEST(Fuse, RejectsOutOfDomainComposition) {
  // Second stage reaches rows the first stage never produced.
  const StencilProgram s1 = smoother("S1", 1, 20, 20, "A");
  const StencilProgram s2 = smoother("S2", 1, 20, 20, "B");  // same lo!
  EXPECT_THROW(fuse(s1, s2), NotStencilError);
}

TEST(Fuse, RejectsMultiArrayStages) {
  StencilProgram multi("M", poly::Domain::box({1, 1}, {8, 8}));
  multi.add_input("A", {{0, 0}});
  multi.add_input("W", {{0, 0}});
  EXPECT_THROW(fuse(multi, multi), NotStencilError);
  EXPECT_THROW(fuse(smoother("S", 1, 10, 10, "A"), multi),
               NotStencilError);
}

}  // namespace
}  // namespace nup::stencil
