#include "stencil/fuse.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "sim/pipeline.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::stencil {
namespace {

StencilProgram smoother(const std::string& name, std::int64_t lo,
                        std::int64_t rows, std::int64_t cols,
                        const std::string& array) {
  StencilProgram p(name,
                   poly::Domain::box({lo, lo}, {rows - 1 - lo,
                                                cols - 1 - lo}));
  p.add_input(array, {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel(make_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2}));
  return p;
}

TEST(Fuse, WindowIsMinkowskiSum) {
  const StencilProgram s1 = smoother("S1", 1, 20, 20, "A");
  const StencilProgram s2 = smoother("S2", 2, 20, 20, "B");
  const StencilProgram fused = fuse(s1, s2);
  // Two 5-point von Neumann windows fuse into the 13-point radius-2
  // diamond.
  EXPECT_EQ(fused.total_references(), 13u);
  EXPECT_EQ(fused.iteration().count(), s2.iteration().count());
}

TEST(Fuse, OutputsMatchTheTwoStagePipeline) {
  const StencilProgram s1 = smoother("S1", 1, 14, 16, "A");
  const StencilProgram s2 = smoother("S2", 2, 14, 16, "B");
  const StencilProgram fused = fuse(s1, s2);

  sim::Pipeline pipeline;
  pipeline.add_stage(s1);
  pipeline.add_stage(s2);
  const sim::Pipeline::Result two_stage = pipeline.run();
  ASSERT_TRUE(two_stage.completed);

  const GoldenRun one_pass = run_golden(fused, 1);
  ASSERT_EQ(one_pass.outputs.size(), two_stage.outputs.size());
  for (std::size_t i = 0; i < one_pass.outputs.size(); ++i) {
    EXPECT_NEAR(one_pass.outputs[i], two_stage.outputs[i], 1e-12)
        << "output " << i;
  }
}

TEST(Fuse, FusedProgramRunsOnTheAccelerator) {
  const StencilProgram fused = fuse(smoother("S1", 1, 16, 18, "A"),
                                    smoother("S2", 2, 16, 18, "B"));
  const arch::AcceleratorDesign design = arch::build_design(fused);
  // 13-point window -> 12 banks, still the minimum.
  EXPECT_EQ(design.systems[0].bank_count(), 12u);
  const sim::SimResult r = sim::simulate(fused, design, {});
  ASSERT_FALSE(r.deadlocked) << r.deadlock_detail;
  const GoldenRun golden = run_golden(fused, 1);
  ASSERT_EQ(r.outputs.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(r.outputs[i], golden.outputs[i]);
  }
}

TEST(Fuse, LargeFusedWindowStillBeatsUniformPartitioning) {
  // The paper's motivation: fusion makes windows large, port contention
  // worse, and the non-uniform chain more valuable.
  const StencilProgram fused = fuse(smoother("S1", 1, 64, 96, "A"),
                                    smoother("S2", 2, 64, 96, "B"));
  const std::size_t n = fused.total_references();
  EXPECT_EQ(arch::build_design(fused).systems[0].bank_count(), n - 1);
  EXPECT_GE(baseline::gmp_partition(fused, 0).banks, n);
}

TEST(Fuse, TripleFusion) {
  const StencilProgram s1 = smoother("S1", 1, 20, 20, "A");
  const StencilProgram s2 = smoother("S2", 2, 20, 20, "B");
  const StencilProgram s3 = smoother("S3", 3, 20, 20, "C");
  const StencilProgram fused = fuse(fuse(s1, s2), s3);
  // Radius-3 diamond: 25 points.
  EXPECT_EQ(fused.total_references(), 25u);
  const GoldenRun golden = run_golden(fused, 1);
  EXPECT_EQ(static_cast<std::int64_t>(golden.outputs.size()),
            s3.iteration().count());
}

TEST(Fuse, RejectsOutOfDomainComposition) {
  // Second stage reaches rows the first stage never produced.
  const StencilProgram s1 = smoother("S1", 1, 20, 20, "A");
  const StencilProgram s2 = smoother("S2", 1, 20, 20, "B");  // same lo!
  EXPECT_THROW(fuse(s1, s2), NotStencilError);
}

TEST(Fuse, RejectsMultiArrayStages) {
  StencilProgram multi("M", poly::Domain::box({1, 1}, {8, 8}));
  multi.add_input("A", {{0, 0}});
  multi.add_input("W", {{0, 0}});
  EXPECT_THROW(fuse(multi, multi), NotStencilError);
  EXPECT_THROW(fuse(smoother("S", 1, 10, 10, "A"), multi),
               NotStencilError);
}

// ---- typed failure modes ----------------------------------------------

TEST(Fuse, FailureModesAreDistinctTypes) {
  const StencilProgram s1 = smoother("S1", 1, 20, 20, "A");

  // Arity: a multi-input stage cannot fuse.
  StencilProgram multi("M", poly::Domain::box({2, 2}, {17, 17}));
  multi.add_input("A", {{0, 0}});
  multi.add_input("W", {{0, 0}});
  EXPECT_THROW(fuse(s1, multi), FuseArityError);

  // Dimensionality mismatch.
  StencilProgram one_d("ONE", poly::Domain::box({2}, {17}));
  one_d.add_input("A", {{0}});
  EXPECT_THROW(fuse(s1, one_d), FuseDimensionError);

  // Domain escape.
  const StencilProgram same_lo = smoother("S2", 1, 20, 20, "B");
  EXPECT_THROW(fuse(s1, same_lo), FuseDomainError);

  // All of them are FuseError and the legacy NotStencilError.
  EXPECT_THROW(fuse(s1, multi), FuseError);
  EXPECT_THROW(fuse(s1, one_d), NotStencilError);
}

TEST(Fuse, ErrorsNameTheOffendingStageAndOffset) {
  const StencilProgram s1 = smoother("PRODUCER", 1, 20, 20, "A");
  const StencilProgram s2 = smoother("CONSUMER", 1, 20, 20, "B");
  try {
    fuse(s1, s2);
    FAIL() << "domain escape not detected";
  } catch (const FuseDomainError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PRODUCER"), std::string::npos) << what;
    EXPECT_NE(what.find("CONSUMER"), std::string::npos) << what;
    EXPECT_NE(what.find("("), std::string::npos)
        << "no offending offset in: " << what;
  }
}

// ---- fuse_chain --------------------------------------------------------

TEST(FuseChain, MatchesPairwiseFolding) {
  const std::vector<StencilProgram> stages = {
      smoother("S1", 1, 20, 20, "A"), smoother("S2", 2, 20, 20, "B"),
      smoother("S3", 3, 20, 20, "C")};
  const StencilProgram chained = fuse_chain(stages);
  const StencilProgram folded = fuse(fuse(stages[0], stages[1]), stages[2]);

  EXPECT_EQ(chained.total_references(), folded.total_references());
  EXPECT_EQ(chained.iteration().count(), folded.iteration().count());
  const GoldenRun a = run_golden(chained, 77);
  const GoldenRun b = run_golden(folded, 77);
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(FuseChain, SingleStageIsACopy) {
  const std::vector<StencilProgram> one = {smoother("S1", 1, 16, 16, "A")};
  const StencilProgram same = fuse_chain(one);
  EXPECT_EQ(same.total_references(), one[0].total_references());
  EXPECT_EQ(run_golden(same, 5).outputs, run_golden(one[0], 5).outputs);
}

TEST(FuseChain, ValidatesBeforeFusing) {
  EXPECT_THROW(fuse_chain({}), Error);

  // The incompatible pair sits at the end: validation must reject the
  // chain up front (typed), not after half the folds have been built.
  const std::vector<StencilProgram> bad_tail = {
      smoother("S1", 1, 20, 20, "A"), smoother("S2", 2, 20, 20, "B"),
      smoother("S3", 2, 20, 20, "C")};  // same lo as S2: domain escape
  EXPECT_THROW(fuse_chain(bad_tail), FuseDomainError);

  StencilProgram multi("M", poly::Domain::box({2, 2}, {17, 17}));
  multi.add_input("A", {{0, 0}});
  multi.add_input("W", {{0, 0}});
  const std::vector<StencilProgram> bad_arity = {
      smoother("S1", 1, 20, 20, "A"), multi};
  EXPECT_THROW(fuse_chain(bad_arity), FuseArityError);
}

}  // namespace
}  // namespace nup::stencil
