#include "stencil/gallery.hpp"

#include "poly/reuse.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nup::stencil {
namespace {

TEST(Gallery, PaperBenchmarkCountAndOrder) {
  const std::vector<StencilProgram> all = paper_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name(), "DENOISE");
  EXPECT_EQ(all[1].name(), "RICIAN");
  EXPECT_EQ(all[2].name(), "SOBEL");
  EXPECT_EQ(all[3].name(), "BICUBIC");
  EXPECT_EQ(all[4].name(), "DENOISE_3D");
  EXPECT_EQ(all[5].name(), "SEGMENTATION_3D");
}

TEST(Gallery, WindowSizesMatchPaper) {
  // Original II in Table 4 equals the number of loads per iteration.
  EXPECT_EQ(denoise_2d().total_references(), 5u);
  EXPECT_EQ(rician_2d().total_references(), 4u);
  EXPECT_EQ(sobel_2d().total_references(), 8u);
  EXPECT_EQ(bicubic_2d().total_references(), 4u);
  EXPECT_EQ(denoise_3d().total_references(), 7u);
  EXPECT_EQ(segmentation_3d().total_references(), 19u);
}

TEST(Gallery, DenoiseMatchesFig2) {
  const StencilProgram p = denoise_2d();
  poly::IntVec lo;
  poly::IntVec hi;
  ASSERT_TRUE(p.data_domain_hull(0).as_single_box(&lo, &hi));
  EXPECT_EQ(lo, (poly::IntVec{0, 0}));
  EXPECT_EQ(hi, (poly::IntVec{767, 1023}));
}

TEST(Gallery, SegmentationWindowIsCubeMinusCorners) {
  const StencilProgram p = segmentation_3d();
  std::set<poly::IntVec> offsets;
  for (const ArrayReference& ref : p.inputs()[0].refs) {
    offsets.insert(ref.offset);
    std::int64_t l1 = 0;
    for (std::int64_t c : ref.offset) l1 += std::abs(c);
    EXPECT_LE(l1, 2);  // no corners
  }
  EXPECT_EQ(offsets.size(), 19u);
  EXPECT_TRUE(offsets.count({0, 0, 0}));
  EXPECT_TRUE(offsets.count({1, 1, 0}));
  EXPECT_FALSE(offsets.count({1, 1, 1}));
}

TEST(Gallery, DimensionalitiesAreCorrect) {
  EXPECT_EQ(denoise_2d().dim(), 2u);
  EXPECT_EQ(denoise_3d().dim(), 3u);
  EXPECT_EQ(segmentation_3d().dim(), 3u);
}

TEST(Gallery, CustomSizesPropagate) {
  const StencilProgram p = denoise_2d(100, 200);
  poly::IntVec lo;
  poly::IntVec hi;
  ASSERT_TRUE(p.data_domain_hull(0).as_single_box(&lo, &hi));
  EXPECT_EQ(hi, (poly::IntVec{99, 199}));
}

TEST(Gallery, SkewedDemoIsNonRectangular) {
  const StencilProgram p = skewed_demo();
  EXPECT_FALSE(p.iteration().as_single_box(nullptr, nullptr));
  EXPECT_GT(p.iteration().count(), 0);
}

TEST(Gallery, SkewedDemoRowsShiftAndGrow) {
  const StencilProgram p = skewed_demo(8, 12);
  // Row i spans [i+1, 2i+10]: sheared start, growing length.
  EXPECT_TRUE(p.iteration().contains({2, 3}));
  EXPECT_FALSE(p.iteration().contains({2, 2}));
  EXPECT_TRUE(p.iteration().contains({2, 14}));
  EXPECT_FALSE(p.iteration().contains({2, 15}));
  EXPECT_TRUE(p.iteration().contains({4, 18}));
  EXPECT_FALSE(p.iteration().contains({4, 19}));
}

TEST(Gallery, SkewedDemoReuseDistanceVaries) {
  // The Fig 9 property this demo exists for: the reuse distance between
  // adjacent references changes over the execution.
  const StencilProgram p = skewed_demo(12, 16);
  const poly::ReuseResult r = poly::max_reuse_distance(
      p.iteration(), p.input_data_domain(0), {1, 1}, {0, 0});
  EXPECT_GT(r.max_distance, r.min_distance);
}

TEST(Gallery, TriangularDemoShape) {
  const StencilProgram p = triangular_demo(10);
  EXPECT_TRUE(p.iteration().contains({5, 5}));
  EXPECT_FALSE(p.iteration().contains({5, 6}));
  EXPECT_TRUE(p.iteration().contains({8, 1}));
}

TEST(Gallery, ExtraKernelsConstruct) {
  EXPECT_EQ(jacobi_2d().total_references(), 5u);
  EXPECT_EQ(blur_2d().total_references(), 9u);
  EXPECT_EQ(heat_3d().total_references(), 7u);
}

TEST(Gallery, BicubicWindowIsStride2Row) {
  const StencilProgram p = bicubic_2d();
  for (const ArrayReference& ref : p.inputs()[0].refs) {
    EXPECT_EQ(ref.offset[0], 0);
    EXPECT_EQ(ref.offset[1] % 2, 0);
  }
}

TEST(Gallery, SobelOmitsCenter) {
  const StencilProgram p = sobel_2d();
  for (const ArrayReference& ref : p.inputs()[0].refs) {
    EXPECT_FALSE(ref.offset[0] == 0 && ref.offset[1] == 0);
  }
}

}  // namespace
}  // namespace nup::stencil
