#include "stencil/program.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::stencil {
namespace {

StencilProgram make_small() {
  StencilProgram p("T", poly::Domain::box({1, 1}, {6, 8}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  return p;
}

TEST(StencilProgram, BasicProperties) {
  const StencilProgram p = make_small();
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_EQ(p.total_references(), 5u);
  EXPECT_EQ(p.inputs().size(), 1u);
  EXPECT_EQ(p.inputs()[0].name, "A");
}

TEST(StencilProgram, RejectsEmptyIterationDomain) {
  EXPECT_THROW(StencilProgram("X", poly::Domain()), NotStencilError);
}

TEST(StencilProgram, RejectsDuplicateOffsets) {
  StencilProgram p("T", poly::Domain::box({0, 0}, {3, 3}));
  EXPECT_THROW(p.add_input("A", {{0, 0}, {0, 0}}), NotStencilError);
}

TEST(StencilProgram, RejectsWrongOffsetDimensionality) {
  StencilProgram p("T", poly::Domain::box({0, 0}, {3, 3}));
  EXPECT_THROW(p.add_input("A", {{0, 0, 0}}), NotStencilError);
}

TEST(StencilProgram, RejectsEmptyReferenceList) {
  StencilProgram p("T", poly::Domain::box({0, 0}, {3, 3}));
  EXPECT_THROW(p.add_input("A", {}), NotStencilError);
}

TEST(StencilProgram, ReferenceDomainIsTranslatedIteration) {
  const StencilProgram p = make_small();
  // Reference A[i+1][j] (offset (1,0)) touches rows 2..7.
  const poly::Domain d = p.reference_domain(0, 4);
  EXPECT_TRUE(d.contains({2, 1}));
  EXPECT_TRUE(d.contains({7, 8}));
  EXPECT_FALSE(d.contains({1, 1}));
  EXPECT_EQ(d.count(), p.iteration().count());
}

TEST(StencilProgram, InputDataDomainIsUnion) {
  const StencilProgram p = make_small();
  const poly::Domain d = p.input_data_domain(0);
  // Union of the five translated domains: corners are excluded
  // (Example 4 of the paper).
  EXPECT_FALSE(d.contains({0, 0}));
  EXPECT_TRUE(d.contains({0, 1}));
  EXPECT_TRUE(d.contains({1, 0}));
  EXPECT_TRUE(d.contains({3, 4}));
  EXPECT_FALSE(d.contains({7, 9}));
  EXPECT_TRUE(d.contains({7, 8}));
}

TEST(StencilProgram, DataDomainHullIsBoundingBox) {
  const StencilProgram p = make_small();
  poly::IntVec lo;
  poly::IntVec hi;
  ASSERT_TRUE(p.data_domain_hull(0).as_single_box(&lo, &hi));
  EXPECT_EQ(lo, (poly::IntVec{0, 0}));
  EXPECT_EQ(hi, (poly::IntVec{7, 9}));
}

TEST(StencilProgram, HullContainsUnion) {
  const StencilProgram p = make_small();
  const poly::Domain hull = p.data_domain_hull(0);
  p.input_data_domain(0).for_each([&](const poly::IntVec& h) {
    EXPECT_TRUE(hull.contains(h));
  });
}

TEST(StencilProgram, DefaultKernelIsAverage) {
  const StencilProgram p = make_small();
  const double v = p.kernel()({1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(StencilProgram, WeightedSumKernel) {
  const KernelFn k = make_weighted_sum({2.0, -1.0});
  EXPECT_DOUBLE_EQ(k({3.0, 4.0}), 2.0);
  EXPECT_THROW(k({1.0}), Error);
}

TEST(StencilProgram, ToCCodeRendersLoopNestAndRefs) {
  const StencilProgram p = make_small();
  const std::string code = p.to_c_code();
  EXPECT_NE(code.find("for (int i = 1; i <= 6; i++)"), std::string::npos);
  EXPECT_NE(code.find("A[i-1][j]"), std::string::npos);
  EXPECT_NE(code.find("A[i][j+1]"), std::string::npos);
  EXPECT_NE(code.find("B[i][j] = kernel("), std::string::npos);
}

TEST(ArrayReference, ToStringFormats) {
  const ArrayReference ref{{-1, 2, 0}};
  EXPECT_EQ(ref.to_string("A", {"i", "j", "k"}), "A[i-1][j+2][k]");
}

TEST(ArrayReference, ToStringSizeMismatchThrows) {
  const ArrayReference ref{{1, 2}};
  EXPECT_THROW(ref.to_string("A", {"i"}), Error);
}

TEST(StencilProgram, IterationNamesBeyondThreeDims) {
  StencilProgram p("T4",
                   poly::Domain::box({0, 0, 0, 0}, {1, 1, 1, 1}));
  const std::vector<std::string> names = p.iteration_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "i");
  EXPECT_EQ(names[3], "x3");
}

}  // namespace
}  // namespace nup::stencil
