#include "stencil/transform.hpp"

#include <gtest/gtest.h>

#include <map>

#include "arch/builder.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::stencil {
namespace {

TEST(StencilTransform, PreservesStructure) {
  const StencilProgram p = denoise_2d(16, 20);
  const StencilProgram q =
      transform(p, poly::skew(2, 0, 1, 1));
  EXPECT_EQ(q.total_references(), p.total_references());
  EXPECT_EQ(q.iteration().count(), p.iteration().count());
  EXPECT_EQ(q.dim(), p.dim());
}

TEST(StencilTransform, OffsetsMapThroughTheMatrix) {
  const StencilProgram p = denoise_2d(16, 20);
  const poly::UnimodularTransform t = poly::skew(2, 0, 1, 1);
  const StencilProgram q = transform(p, t);
  for (std::size_t r = 0; r < p.inputs()[0].refs.size(); ++r) {
    EXPECT_EQ(q.inputs()[0].refs[r].offset,
              t.apply_offset(p.inputs()[0].refs[r].offset));
  }
}

TEST(StencilTransform, OutputsMatchUnderIterationMapping) {
  // Golden outputs of the transformed program at T*i equal the original
  // outputs at i (the transformed gather visits the same data values).
  const StencilProgram p = jacobi_2d(10, 12);
  poly::UnimodularTransform t = poly::skew(2, 0, 1, 1);
  t.shift = {3, -2};
  const StencilProgram q = transform(p, t);

  const GoldenRun gp = run_golden(p, 9);
  const GoldenRun gq = run_golden(q, 9);
  ASSERT_EQ(gp.outputs.size(), gq.outputs.size());

  // Map original iteration -> output, then check the transformed program.
  std::map<poly::IntVec, double> by_point;
  std::size_t idx = 0;
  p.iteration().for_each([&](const poly::IntVec& i) {
    by_point[t.apply(i)] = gp.outputs[idx++];
  });
  // Note: with the skewed data layout the transformed program gathers
  // A'[T*i + T*f]; synthetic_value depends on the raw coordinates, so the
  // comparison must regenerate the expected value from the transformed
  // gather, not reuse gp directly. Instead check against a direct manual
  // gather.
  idx = 0;
  const KernelFn& kernel = q.kernel();
  q.iteration().for_each([&](const poly::IntVec& i) {
    std::vector<double> values;
    for (const ArrayReference& ref : q.inputs()[0].refs) {
      values.push_back(synthetic_value(9, 0, poly::add(i, ref.offset)));
    }
    EXPECT_DOUBLE_EQ(gq.outputs[idx], kernel(values));
    ++idx;
  });
}

TEST(StencilTransform, TransformedProgramRunsThroughTheWholeFlow) {
  // A skewed variant of jacobi: the domain is no longer rectangular, the
  // offsets no longer axis-aligned -- yet build/simulate/verify all work.
  const StencilProgram p = jacobi_2d(10, 12);
  const StencilProgram q = transform(p, poly::skew(2, 0, 1, 1));
  const sim::SimResult r = sim::simulate(q, arch::build_design(q), {});
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
  EXPECT_EQ(r.kernel_fires, q.iteration().count());
  const GoldenRun golden = run_golden(q, 1);
  ASSERT_EQ(r.outputs.size(), golden.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    ASSERT_EQ(r.outputs[i], golden.outputs[i]);
  }
}

TEST(StencilTransform, UnshearingTheSkewedDemoShrinksBuffers) {
  // The inverse direction of [15]: the skewed Fig 9 domain can be
  // rectangularized, after which hull sizing is tight again.
  const StencilProgram p = skewed_demo(16, 24);
  const StencilProgram q = transform(p, poly::skew(2, 0, 1, -1));
  const arch::AcceleratorDesign before = arch::build_design(p);
  const arch::AcceleratorDesign after = arch::build_design(q);
  EXPECT_GT(before.total_buffer_size(), 0);
  EXPECT_GT(after.total_buffer_size(), 0);
  // The transformed program still simulates correctly.
  const sim::SimResult r = sim::simulate(q, after, {});
  EXPECT_FALSE(r.deadlocked) << r.deadlock_detail;
}

TEST(StencilTransform, InterchangeSwapsLoopRoles) {
  const StencilProgram p = denoise_2d(10, 30);
  const StencilProgram q = transform(p, poly::interchange(2, 0, 1));
  poly::IntVec lo;
  poly::IntVec hi;
  ASSERT_TRUE(q.data_domain_hull(0).as_single_box(&lo, &hi));
  // 10x30 grid becomes 30x10.
  EXPECT_EQ(hi[0] - lo[0], 29);
  EXPECT_EQ(hi[1] - lo[1], 9);
}

TEST(StencilTransform, DimensionMismatchThrows) {
  const StencilProgram p = denoise_2d(10, 12);
  EXPECT_THROW(transform(p, poly::identity_transform(3)), Error);
}

}  // namespace
}  // namespace nup::stencil
