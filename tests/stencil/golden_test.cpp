#include "stencil/golden.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stencil/gallery.hpp"

namespace nup::stencil {
namespace {

TEST(SyntheticValue, DeterministicAndSeedSensitive) {
  const poly::IntVec h{3, 4};
  EXPECT_EQ(synthetic_value(1, 0, h), synthetic_value(1, 0, h));
  EXPECT_NE(synthetic_value(1, 0, h), synthetic_value(2, 0, h));
  EXPECT_NE(synthetic_value(1, 0, h), synthetic_value(1, 1, h));
  EXPECT_NE(synthetic_value(1, 0, {3, 4}), synthetic_value(1, 0, {4, 3}));
}

TEST(SyntheticValue, InUnitInterval) {
  for (std::int64_t i = -5; i < 5; ++i) {
    for (std::int64_t j = -5; j < 5; ++j) {
      const double v = synthetic_value(9, 0, {i, j});
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(GoldenRun, OutputCountEqualsIterations) {
  const StencilProgram p = denoise_2d(16, 20);
  const GoldenRun run = run_golden(p, 1);
  EXPECT_EQ(static_cast<std::int64_t>(run.outputs.size()),
            p.iteration().count());
}

TEST(GoldenRun, FirstOutputMatchesManualGather) {
  const StencilProgram p = denoise_2d(16, 20);
  const GoldenRun run = run_golden(p, 5);
  // First iteration is (1, 1); gather in source order.
  std::vector<double> values;
  for (const ArrayReference& ref : p.inputs()[0].refs) {
    values.push_back(
        synthetic_value(5, 0, poly::add({1, 1}, ref.offset)));
  }
  EXPECT_DOUBLE_EQ(run.outputs.front(), p.kernel()(values));
}

TEST(GoldenRun, SeedChangesOutputs) {
  const StencilProgram p = jacobi_2d(12, 12);
  const GoldenRun a = run_golden(p, 1);
  const GoldenRun b = run_golden(p, 2);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  EXPECT_NE(a.outputs.front(), b.outputs.front());
}

TEST(GoldenRun, NonLinearKernelExecutes) {
  const StencilProgram p = rician_2d(10, 10);
  const GoldenRun run = run_golden(p, 3);
  for (double v : run.outputs) {
    EXPECT_GE(v, 0.0);  // sqrt of a sum of squares
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(GoldenRun, SkewedDomainExecutes) {
  const StencilProgram p = skewed_demo(10, 14);
  const GoldenRun run = run_golden(p, 1);
  EXPECT_EQ(static_cast<std::int64_t>(run.outputs.size()),
            p.iteration().count());
}

}  // namespace
}  // namespace nup::stencil
