#include "baseline/gmp.hpp"

#include <gtest/gtest.h>

#include "baseline/conflict.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::baseline {
namespace {

TEST(Gmp, PaperBankCounts) {
  // Fig 6 / Section 5: [7][8] need 5, 5, 20 banks on RICIAN, BICUBIC and
  // SEGMENTATION_3D, and keep 5 for DENOISE.
  EXPECT_EQ(gmp_partition(stencil::denoise_2d(), 0).banks, 5u);
  EXPECT_EQ(gmp_partition(stencil::rician_2d(), 0).banks, 5u);
  EXPECT_EQ(gmp_partition(stencil::bicubic_2d(), 0).banks, 5u);
  EXPECT_EQ(gmp_partition(stencil::segmentation_3d(), 0).banks, 20u);
}

TEST(Gmp, AlwaysAtLeastWindowSize) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    EXPECT_GE(gmp_partition(p, 0).banks, p.total_references()) << p.name();
  }
}

TEST(Gmp, MoreBanksThanOurMinimumEverywhere) {
  // Every uniform result exceeds the paper's n-1 optimum.
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    EXPECT_GT(gmp_partition(p, 0).banks, p.total_references() - 1)
        << p.name();
  }
}

TEST(Gmp, SchemeIsGenuinelyConflictFree) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const UniformPartition part = gmp_partition(p, 0);
    const poly::IntVec alpha = part.scheme;
    const std::int64_t banks = static_cast<std::int64_t>(part.banks);
    EXPECT_TRUE(verify_by_sliding(
        p, 0,
        [&](const poly::IntVec& h) {
          std::int64_t dot = 0;
          for (std::size_t d = 0; d < h.size(); ++d) dot += alpha[d] * h[d];
          return ((dot % banks) + banks) % banks;
        },
        20'000))
        << p.name();
  }
}

TEST(Gmp, PaddingInflatesInnerExtents) {
  const UniformPartition part =
      gmp_partition(stencil::segmentation_3d(), 0);
  EXPECT_TRUE(part.padded);
  EXPECT_EQ(part.padded_extents[0], part.extents[0]);  // outer unpadded
  EXPECT_GE(part.padded_extents[1], part.extents[1]);
  EXPECT_EQ(part.padded_extents[1] % static_cast<std::int64_t>(part.banks),
            0);
}

TEST(Gmp, PaddingCanBeDisabled) {
  GmpOptions options;
  options.pad_for_addressing = false;
  const UniformPartition part =
      gmp_partition(stencil::segmentation_3d(), 0, options);
  EXPECT_FALSE(part.padded);
  EXPECT_EQ(part.padded_extents, part.extents);
}

TEST(Gmp, RowBufferStorageExceedsMinimalSpan) {
  // The uniform row-buffer slab stores whole (padded) rows; it is always
  // at least the minimal span and strictly larger for multi-row windows.
  const UniformPartition part = gmp_partition(stencil::denoise_2d(), 0);
  EXPECT_GT(part.stored_span, part.span);
  // DENOISE buffers 3 full padded rows.
  EXPECT_EQ(part.stored_span, 3 * part.padded_extents[1]);
}

TEST(Gmp, PaddingOverheadLargerInHighDimensions) {
  // Section 5.2: padding "introduces more overhead in a high-dimensional
  // data grid" -- every padded inner dimension multiplies the slab.
  const UniformPartition p2 = gmp_partition(stencil::denoise_2d(), 0);
  const UniformPartition p3 =
      gmp_partition(stencil::segmentation_3d(), 0);
  auto padding_overhead = [](const UniformPartition& p) {
    double padded = 1.0;
    double unpadded = 1.0;
    for (std::size_t d = 1; d < p.extents.size(); ++d) {
      padded *= static_cast<double>(p.padded_extents[d]);
      unpadded *= static_cast<double>(p.extents[d]);
    }
    return padded / unpadded;
  };
  EXPECT_GT(padding_overhead(p3), padding_overhead(p2));
}

TEST(Gmp, SearchBoundRespected) {
  GmpOptions options;
  options.max_banks = 4;
  EXPECT_THROW(gmp_partition(stencil::denoise_2d(), 0, options),
               PartitionError);
}

TEST(Gmp, RawInterfaceMatchesProgramInterface) {
  const stencil::StencilProgram p = stencil::rician_2d();
  std::vector<poly::IntVec> offsets;
  for (const stencil::ArrayReference& ref : p.inputs()[0].refs) {
    offsets.push_back(ref.offset);
  }
  const UniformPartition a = gmp_partition(p, 0);
  const UniformPartition b = gmp_partition_raw(offsets, {768, 1024});
  EXPECT_EQ(a.banks, b.banks);
  EXPECT_EQ(a.total_size, b.total_size);
}

TEST(Gmp, ToStringMentionsScheme) {
  const UniformPartition part = gmp_partition(stencil::denoise_2d(), 0);
  const std::string text = part.to_string();
  EXPECT_NE(text.find("gmp[8]"), std::string::npos);
  EXPECT_NE(text.find("banks"), std::string::npos);
}

}  // namespace
}  // namespace nup::baseline
