#include "baseline/reschedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/cyclic.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::baseline {
namespace {

std::int64_t positive_mod(std::int64_t a, std::int64_t n) {
  const std::int64_t r = a % n;
  return r < 0 ? r + n : r;
}

TEST(Reschedule, DenoiseKeepsWindowSizeBanksAtPathologicalRowSizes) {
  // The point of [7]: where plain cyclic partitioning needs 6+ banks at
  // w=1024 (Fig 5), access rescheduling gets back to n = 5.
  const ReschedulePartition part =
      reschedule_partition(stencil::denoise_2d(), 0);
  EXPECT_EQ(part.partition.banks, 5u);
  EXPECT_EQ(part.partition.method, "reschedule[7]");
  // And plain cyclic really is worse on the same grid.
  EXPECT_GT(cyclic_partition(stencil::denoise_2d(), 0).banks, 5u);
}

TEST(Reschedule, StableAcrossRowSizes) {
  // Unlike [5], the rescheduled bank count stays at n across the Fig 5
  // sweep.
  const std::vector<poly::IntVec> offsets = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  for (std::int64_t w = 1000; w <= 1040; ++w) {
    const ReschedulePartition part =
        reschedule_partition_raw(offsets, {768, w});
    EXPECT_EQ(part.partition.banks, 5u) << "w=" << w;
  }
}

TEST(Reschedule, DelaysWithinBudget) {
  RescheduleOptions options;
  options.max_delay = 3;
  const ReschedulePartition part =
      reschedule_partition(stencil::sobel_2d(), 0, options);
  ASSERT_EQ(part.delays.size(), 8u);
  for (std::int64_t t : part.delays) {
    EXPECT_GE(t, 0);
    EXPECT_LE(t, options.max_delay);
  }
}

TEST(Reschedule, ShiftedOffsetsAreConflictFree) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const ReschedulePartition part = reschedule_partition(p, 0);
    const std::int64_t banks =
        static_cast<std::int64_t>(part.partition.banks);
    std::set<std::int64_t> used;
    std::size_t k = 0;
    for (const stencil::ArrayReference& ref : p.inputs()[0].refs) {
      const std::int64_t lin =
          linearize(ref.offset, part.partition.extents) - part.delays[k++];
      EXPECT_TRUE(used.insert(positive_mod(lin, banks)).second)
          << p.name() << " reference " << k;
    }
  }
}

TEST(Reschedule, NeverBelowWindowSize) {
  // Even the permissive search cannot beat n: there are n simultaneous
  // reads every cycle -- this is the floor the paper's n-1 design breaks
  // by stealing the write port's element.
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const ReschedulePartition part = reschedule_partition(p, 0);
    EXPECT_GE(part.partition.banks, p.total_references()) << p.name();
  }
}

TEST(Reschedule, ZeroDelayBudgetEqualsPlainCyclic) {
  RescheduleOptions options;
  options.max_delay = 0;
  const ReschedulePartition part =
      reschedule_partition(stencil::denoise_2d(), 0, options);
  EXPECT_EQ(part.partition.banks,
            cyclic_partition(stencil::denoise_2d(), 0).banks);
}

TEST(Reschedule, DelayRegistersCountedInStorage) {
  const ReschedulePartition part =
      reschedule_partition(stencil::denoise_2d(), 0);
  const std::int64_t max_delay =
      *std::max_element(part.delays.begin(), part.delays.end());
  EXPECT_EQ(part.partition.stored_span, part.partition.span + max_delay);
  EXPECT_GE(part.partition.total_size, part.partition.stored_span);
}

TEST(Reschedule, BoundedSearchThrows) {
  RescheduleOptions options;
  options.max_banks = 4;  // below the 5-point window size
  EXPECT_THROW(reschedule_partition(stencil::denoise_2d(), 0, options),
               PartitionError);
}

}  // namespace
}  // namespace nup::baseline
