#include "baseline/conflict.hpp"

#include <gtest/gtest.h>

#include "baseline/partition.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::baseline {
namespace {

TEST(Conflict, LinearSchemeSeparatesDenoiseWithFiveBanks) {
  const std::vector<poly::IntVec> offsets = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  EXPECT_TRUE(linear_scheme_conflict_free(offsets, {1, 2}, 5));
  // alpha = (1, 1) collides A[i-1][j] with A[i][j-1].
  EXPECT_FALSE(linear_scheme_conflict_free(offsets, {1, 1}, 5));
}

TEST(Conflict, FewerBanksThanReferencesAlwaysConflicts) {
  const std::vector<poly::IntVec> offsets = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  for (std::int64_t a = 0; a < 4; ++a) {
    for (std::int64_t b = 0; b < 4; ++b) {
      EXPECT_FALSE(linear_scheme_conflict_free(offsets, {a, b}, 4));
    }
  }
}

TEST(Conflict, FlatSchemeDependsOnRowSize) {
  const std::vector<poly::IntVec> offsets = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  // Fig 5: feasibility of a bank count under [5] changes with the row
  // size. w = 1024: N=5 fails (1025 = 5*205), N=7 works.
  EXPECT_FALSE(flat_scheme_conflict_free(offsets, {768, 1024}, 5));
  EXPECT_TRUE(flat_scheme_conflict_free(offsets, {768, 1024}, 7));
  // w = 1023: N=5 works (no pairwise difference divisible by 5).
  EXPECT_TRUE(flat_scheme_conflict_free(offsets, {768, 1023}, 5));
}

TEST(Conflict, ZeroBanksThrows) {
  EXPECT_THROW(linear_scheme_conflict_free({{0, 0}}, {1, 1}, 0), Error);
  EXPECT_THROW(flat_scheme_conflict_free({{0, 0}}, {4, 4}, 0), Error);
}

TEST(Conflict, SlidingVerificationAcceptsValidScheme) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 40);
  const BankFn bank = [](const poly::IntVec& h) {
    return (h[0] + 2 * h[1]) % 5;
  };
  EXPECT_TRUE(verify_by_sliding(p, 0, bank));
}

TEST(Conflict, SlidingVerificationRejectsBadScheme) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 40);
  const BankFn bank = [](const poly::IntVec& h) {
    return (h[0] + h[1]) % 5;  // diagonal neighbours collide
  };
  EXPECT_FALSE(verify_by_sliding(p, 0, bank));
}

TEST(Conflict, SlidingVerificationHonoursPositionLimit) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 64);
  std::int64_t calls = 0;
  const BankFn bank = [&](const poly::IntVec& h) {
    ++calls;
    return (h[0] + 2 * h[1]) % 5;
  };
  EXPECT_TRUE(verify_by_sliding(p, 0, bank, 10));
  EXPECT_LE(calls, 10 * 5);
}

}  // namespace
}  // namespace nup::baseline
