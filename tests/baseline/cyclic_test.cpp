#include "baseline/cyclic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baseline/conflict.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::baseline {
namespace {

TEST(Cyclic, DenoiseDefaultGridNeedsSixBanks) {
  // Fig 5: with row size 1024 the window offsets collide under 5 banks
  // (1025 = 5*205), so [5] needs more than the window size.
  const UniformPartition part =
      cyclic_partition(stencil::denoise_2d(), 0);
  EXPECT_EQ(part.banks, 6u);
  EXPECT_EQ(part.method, "cyclic[5]");
}

TEST(Cyclic, BankCountVariesWithRowSize) {
  // The Fig 5 phenomenon: same window, different row sizes, different
  // bank counts (the paper's sweep spans 5..8).
  const std::vector<poly::IntVec> offsets = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  std::set<std::size_t> seen;
  for (std::int64_t w = 1000; w <= 1056; ++w) {
    seen.insert(cyclic_partition_raw(offsets, {768, w}).banks);
  }
  EXPECT_GE(seen.size(), 3u);    // several distinct counts
  EXPECT_GE(*seen.begin(), 5u);  // never below n
  EXPECT_GT(*seen.rbegin(), 5u); // and not always n either
}

TEST(Cyclic, SpecificRowSizesReproduceFig5Points) {
  const std::vector<poly::IntVec> offsets = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  // w = 1023: no difference divisible by 5 -> the minimum 5 works.
  EXPECT_EQ(cyclic_partition_raw(offsets, {768, 1023}).banks, 5u);
  // w = 1024: w+1 divisible by 5, w mod 6 = 4 -> 6 banks.
  EXPECT_EQ(cyclic_partition_raw(offsets, {768, 1024}).banks, 6u);
  // w = 1015: fails 5 (w = 5*203), 6 (w-1 = 6*169), 7 (w = 7*145) and
  // 8 (w+1 = 8*127) -> 9 banks.
  EXPECT_EQ(cyclic_partition_raw(offsets, {768, 1015}).banks, 9u);
}

TEST(Cyclic, ResultIsConflictFreeBySliding) {
  const stencil::StencilProgram p = stencil::denoise_2d(48, 64);
  const UniformPartition part = cyclic_partition(p, 0);
  const poly::IntVec extents = part.extents;
  const std::size_t banks = part.banks;
  EXPECT_TRUE(verify_by_sliding(p, 0, [&](const poly::IntVec& h) {
    return linearize(h, extents) % static_cast<std::int64_t>(banks);
  }));
}

TEST(Cyclic, NeverFewerBanksThanReferences) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const UniformPartition part = cyclic_partition(p, 0);
    EXPECT_GE(part.banks, p.total_references()) << p.name();
  }
}

TEST(Cyclic, TotalSizeCoversSpan) {
  const UniformPartition part =
      cyclic_partition(stencil::denoise_2d(), 0);
  EXPECT_GE(part.total_size, part.span);
  EXPECT_EQ(part.total_size,
            part.bank_depth * static_cast<std::int64_t>(part.banks));
  // DENOISE span: two full rows plus one element.
  EXPECT_EQ(part.span, 2 * 1024 + 1);
}

TEST(Cyclic, SearchBoundRespected) {
  const std::vector<poly::IntVec> offsets = {
      {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  CyclicOptions options;
  options.max_banks = 5;  // w=1024 needs 7
  EXPECT_THROW(cyclic_partition_raw(offsets, {768, 1024}, options),
               PartitionError);
}

TEST(Cyclic, SchemeIsRowMajorStrides) {
  const UniformPartition part =
      cyclic_partition(stencil::denoise_3d(), 0);
  ASSERT_EQ(part.scheme.size(), 3u);
  EXPECT_EQ(part.scheme[2], 1);
  EXPECT_EQ(part.scheme[1], 128);
  EXPECT_EQ(part.scheme[0], 128 * 128);
}

TEST(WindowSpan, ComputedOnLinearizedAddresses) {
  EXPECT_EQ(window_span({{-1, 0}, {1, 0}}, {8, 10}), 21);
  EXPECT_EQ(window_span({{0, 0}}, {8, 10}), 1);
  EXPECT_THROW(window_span({}, {8, 10}), Error);
}

TEST(Linearize, RowMajor) {
  EXPECT_EQ(linearize({0, 0}, {4, 5}), 0);
  EXPECT_EQ(linearize({1, 2}, {4, 5}), 7);
  EXPECT_EQ(linearize({2, 3, 4}, {5, 6, 7}), 2 * 42 + 3 * 7 + 4);
  EXPECT_THROW(linearize({1}, {4, 5}), Error);
}

}  // namespace
}  // namespace nup::baseline
