#include "baseline/nonuniform_modulo.hpp"

#include <gtest/gtest.h>

#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::baseline {
namespace {

std::vector<poly::IntVec> window_of(const stencil::StencilProgram& p) {
  std::vector<poly::IntVec> offsets;
  for (const stencil::ArrayReference& ref : p.inputs()[0].refs) {
    offsets.push_back(ref.offset);
  }
  return offsets;
}

ModuloExploreOptions roomy() {
  ModuloExploreOptions options;
  options.max_regions = 4096;
  return options;
}

TEST(NonUniformModulo, RegionCheckerBasics) {
  // Span 4, offsets {0,1}. Regions {[0,2),[2,4)}: base=1 puts 1,2 in
  // different regions but base=2 collides 2,3. Width-1+width-3: base=1
  // collides in [1,4). Four singleton regions always work.
  EXPECT_FALSE(regions_conflict_free({0, 1}, 4, {0, 2}));
  EXPECT_FALSE(regions_conflict_free({0, 1}, 4, {0, 1}));
  EXPECT_TRUE(regions_conflict_free({0, 1}, 4, {0, 1, 2, 3}));
}

TEST(NonUniformModulo, PigeonholeRejected) {
  EXPECT_FALSE(regions_conflict_free({0, 1, 2}, 8, {0, 4}));
}

TEST(NonUniformModulo, NMinus1RegionsNeverFeasible) {
  // The pigeonhole argument of Section 2.3: n live addresses cannot fit
  // n-1 banks. Streaming reaches n-1 only because the newest element
  // arrives from off-chip instead of a bank.
  const stencil::StencilProgram cases[] = {
      stencil::denoise_2d(16, 20), stencil::rician_2d(16, 20),
      stencil::bicubic_2d(8, 20)};
  for (const stencil::StencilProgram& p : cases) {
    const ModuloExploration result = explore_nonuniform_modulo(
        window_of(p), array_extents(p, 0), roomy());
    EXPECT_FALSE(result.feasible_n_minus_1) << p.name();
  }
}

TEST(NonUniformModulo, DenoiseDegeneratesToUnitRegions) {
  // DENOISE's window has unit circular gaps, so conflict-free contiguous
  // regions must be single elements: span-many banks. This degeneracy is
  // why the paper's streaming chain, not a modified modulo scheme, is the
  // practical road to non-uniform banks (Section 6's open question).
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const ModuloExploration result =
      explore_nonuniform_modulo(window_of(p), array_extents(p, 0), roomy());
  EXPECT_EQ(result.span, 2 * 20 + 1);
  EXPECT_EQ(static_cast<std::int64_t>(result.best_regions), result.span);
  EXPECT_FALSE(result.feasible_n);
}

TEST(NonUniformModulo, DenseRowWindowIsTheFeasibleCase) {
  // A fully dense 1-D window (gaps all 1) is the one shape where n
  // contiguous regions suffice.
  const ModuloExploration result = explore_nonuniform_modulo(
      {{0, -1}, {0, 0}, {0, 1}}, {8, 10}, roomy());
  EXPECT_EQ(result.span, 3);
  EXPECT_TRUE(result.feasible_n);
  EXPECT_EQ(result.best_regions, 3u);
}

TEST(NonUniformModulo, ExplorationNeverBeatsStreaming) {
  const stencil::StencilProgram cases[] = {stencil::denoise_2d(16, 20),
                                           stencil::sobel_2d(12, 14),
                                           stencil::bicubic_2d(8, 20)};
  for (const stencil::StencilProgram& p : cases) {
    const ModuloExploration result = explore_nonuniform_modulo(
        window_of(p), array_extents(p, 0), roomy());
    EXPECT_GT(result.best_regions, p.total_references() - 1) << p.name();
  }
}

TEST(NonUniformModulo, TheoryValidatedByExhaustiveRotationCheck) {
  // explore_nonuniform_modulo cross-checks its min-gap construction with
  // regions_conflict_free internally; do the same here explicitly for a
  // non-trivial window.
  const stencil::StencilProgram p = stencil::bicubic_2d(8, 20);
  const ModuloExploration result =
      explore_nonuniform_modulo(window_of(p), array_extents(p, 0), roomy());
  std::vector<std::int64_t> lin;
  for (const poly::IntVec& f : window_of(p)) {
    lin.push_back(linearize(f, array_extents(p, 0)));
  }
  const std::int64_t base = *std::min_element(lin.begin(), lin.end());
  for (std::int64_t& v : lin) v -= base;
  EXPECT_TRUE(
      regions_conflict_free(lin, result.span, result.best_boundaries));
}

TEST(NonUniformModulo, RegionBudgetEnforced) {
  ModuloExploreOptions options;
  options.max_regions = 8;  // DENOISE needs span-many
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  EXPECT_THROW(
      explore_nonuniform_modulo(window_of(p), array_extents(p, 0), options),
      PartitionError);
}

TEST(NonUniformModulo, SpanGuard) {
  ModuloExploreOptions options;
  options.max_span = 10;
  const stencil::StencilProgram p = stencil::denoise_2d(64, 64);
  EXPECT_THROW(
      explore_nonuniform_modulo(window_of(p), array_extents(p, 0), options),
      Error);
}

TEST(NonUniformModulo, SingleReferenceRejected) {
  EXPECT_THROW(explore_nonuniform_modulo({{0, 0}}, {8, 8}), Error);
}

}  // namespace
}  // namespace nup::baseline
