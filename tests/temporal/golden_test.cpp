// Naive T-sweep reference: T=1 must equal the plain golden run under every
// boundary policy (generation 1 always gathers raw synthetic input), the
// kShrink sweep must match an independent replica-chain reference, and the
// value policies must match a test-local gather that maps out-of-domain
// coordinates explicitly.

#include "temporal/golden.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stencil/boundary.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "temporal/unroll.hpp"

namespace nup::temporal {
namespace {

using stencil::BoundaryPolicy;

const BoundaryPolicy kAllPolicies[] = {
    BoundaryPolicy::kShrink, BoundaryPolicy::kClamp, BoundaryPolicy::kWrap,
    BoundaryPolicy::kConstant};

TEST(GoldenSweeps, SingleTimestepEqualsPlainGoldenUnderEveryPolicy) {
  const stencil::StencilProgram p = stencil::jacobi4_2d(14, 18);
  const std::vector<double> plain = stencil::run_golden(p, 77).outputs;
  for (const BoundaryPolicy policy : kAllPolicies) {
    const std::vector<double> swept = run_golden_sweeps(
        p, {.timesteps = 1, .block = 1, .boundary = policy,
            .constant_value = 9.5},
        77);
    EXPECT_EQ(swept, plain) << stencil::to_string(policy);
  }
}

// Independent kShrink reference: golden-run the generation-1 replica over
// its grown box, then gather each later generation from its predecessor's
// dense output by lexicographic rank. Any disagreement in the domain
// algebra or the gather order shows up as a bit difference.
std::vector<double> shrink_reference(const stencil::StencilProgram& base,
                                     std::int64_t timesteps,
                                     std::uint64_t seed) {
  const TemporalSchedule sched = plan_temporal(
      base, {.timesteps = timesteps, .block = 1,
             .boundary = BoundaryPolicy::kShrink});
  std::vector<double> prev;
  for (std::int64_t g = 1; g <= timesteps; ++g) {
    // Under B=1, pass g-1 holds exactly the generation-g replica.
    const stencil::StencilProgram& replica =
        sched.shapes[static_cast<std::size_t>(g - 1)]
            .graph.stages()[0]
            .program;
    if (g == 1) {
      prev = stencil::run_golden(replica, seed).outputs;
      continue;
    }
    const poly::Domain& producer =
        sched.shapes[static_cast<std::size_t>(g - 2)].domains[0];
    std::vector<double> out;
    std::vector<double> gathered;
    replica.iteration().for_each([&](const poly::IntVec& i) {
      gathered.clear();
      for (const stencil::ArrayReference& ref : replica.inputs()[0].refs) {
        poly::IntVec h = i;
        for (std::size_t d = 0; d < h.size(); ++d) h[d] += ref.offset[d];
        gathered.push_back(
            prev[static_cast<std::size_t>(producer.lex_rank(h))]);
      }
      out.push_back(replica.kernel()(gathered));
    });
    prev = std::move(out);
  }
  return prev;
}

TEST(GoldenSweeps, ShrinkMatchesReplicaChainReference) {
  for (const std::uint64_t seed : {3ull, 901ull}) {
    const stencil::StencilProgram p = stencil::heat_2d(18, 22);
    EXPECT_EQ(run_golden_sweeps(
                  p, {.timesteps = 3, .block = 1,
                      .boundary = BoundaryPolicy::kShrink},
                  seed),
              shrink_reference(p, 3, seed))
        << "seed " << seed;
  }
}

// Test-local value-policy reference: generation 1 over the target box from
// raw synthetic input, later generations gathered with explicit coordinate
// mapping.
std::vector<double> value_reference(const stencil::StencilProgram& p,
                                    const TemporalConfig& config,
                                    std::uint64_t seed) {
  poly::IntVec lo, hi;
  EXPECT_TRUE(p.iteration().as_single_box(&lo, &hi));
  std::vector<double> prev;
  for (std::int64_t g = 1; g <= config.timesteps; ++g) {
    std::vector<double> out;
    std::vector<double> gathered;
    p.iteration().for_each([&](const poly::IntVec& i) {
      gathered.clear();
      for (const stencil::ArrayReference& ref : p.inputs()[0].refs) {
        poly::IntVec h = i;
        for (std::size_t d = 0; d < h.size(); ++d) h[d] += ref.offset[d];
        if (g == 1) {
          gathered.push_back(stencil::synthetic_value(seed, 0, h));
          continue;
        }
        if (!p.iteration().contains(h)) {
          if (config.boundary == BoundaryPolicy::kConstant) {
            gathered.push_back(config.constant_value);
            continue;
          }
          h = stencil::map_into_box(h, lo, hi, config.boundary);
        }
        gathered.push_back(
            prev[static_cast<std::size_t>(p.iteration().lex_rank(h))]);
      }
      out.push_back(p.kernel()(gathered));
    });
    prev = std::move(out);
  }
  return prev;
}

TEST(GoldenSweeps, ValuePoliciesMatchExplicitMappingReference) {
  const stencil::StencilProgram p = stencil::jacobi8_2d(12, 16);
  for (const BoundaryPolicy policy :
       {BoundaryPolicy::kClamp, BoundaryPolicy::kWrap,
        BoundaryPolicy::kConstant}) {
    const TemporalConfig config{.timesteps = 3, .block = 1,
                                .boundary = policy, .constant_value = 4.25};
    EXPECT_EQ(run_golden_sweeps(p, config, 19),
              value_reference(p, config, 19))
        << stencil::to_string(policy);
  }
}

TEST(GoldenSweeps, BoundaryPolicyChangesEdgeValues) {
  // Sanity: at T >= 2 the policies genuinely diverge on a window that
  // leaves the domain.
  const stencil::StencilProgram p = stencil::jacobi4_2d(10, 10);
  const auto run = [&](BoundaryPolicy policy) {
    return run_golden_sweeps(p, {.timesteps = 2, .block = 1,
                                 .boundary = policy,
                                 .constant_value = 123.0},
                             5);
  };
  EXPECT_NE(run(BoundaryPolicy::kClamp), run(BoundaryPolicy::kConstant));
  EXPECT_NE(run(BoundaryPolicy::kClamp), run(BoundaryPolicy::kWrap));
  EXPECT_NE(run(BoundaryPolicy::kShrink), run(BoundaryPolicy::kConstant));
}

TEST(GoldenSweeps, BlockDoesNotChangeTheReference) {
  const stencil::StencilProgram p = stencil::heat_2d(14, 14);
  const std::vector<double> b1 = run_golden_sweeps(
      p, {.timesteps = 4, .block = 1, .boundary = BoundaryPolicy::kClamp},
      11);
  const std::vector<double> b4 = run_golden_sweeps(
      p, {.timesteps = 4, .block = 4, .boundary = BoundaryPolicy::kClamp},
      11);
  EXPECT_EQ(b1, b4);
}

TEST(MaxAbsDelta, ComputesResidualAndChecksLayout) {
  EXPECT_EQ(max_abs_delta({1.0, 2.0, 3.0}, {1.5, 2.0, 1.0}), 2.0);
  EXPECT_EQ(max_abs_delta({}, {}), 0.0);
  EXPECT_THROW(max_abs_delta({1.0}, {1.0, 2.0}), TemporalConfigError);
}

}  // namespace
}  // namespace nup::temporal
