// Temporal unroller: configuration validation must fail with typed errors,
// kShrink replica domains must follow the N_g = D + (T-g)*W algebra with
// exact pass-to-pass alignment, value policies must reuse at most two pass
// shapes, and replicas must preserve the base kernel (weights and opaque).

#include "temporal/unroll.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stencil/gallery.hpp"
#include "testing/stencil_gen.hpp"

namespace nup::temporal {
namespace {

using stencil::BoundaryPolicy;

TEST(PlanTemporal, RejectsInvalidCountsWithTypedErrors) {
  const stencil::StencilProgram p = stencil::jacobi4_2d(16, 20);
  EXPECT_THROW(plan_temporal(p, {.timesteps = 0, .block = 1}),
               TemporalConfigError);
  EXPECT_THROW(plan_temporal(p, {.timesteps = -3, .block = 1}),
               TemporalConfigError);
  EXPECT_THROW(plan_temporal(p, {.timesteps = 4, .block = 0}),
               TemporalConfigError);
  // B > T: a pass cannot hold more replicas than generations remain.
  EXPECT_THROW(plan_temporal(p, {.timesteps = 2, .block = 3}),
               TemporalConfigError);
  // All temporal errors share a base class.
  EXPECT_THROW(plan_temporal(p, {.timesteps = 2, .block = 3}),
               TemporalError);
}

TEST(PlanTemporal, RejectsMultiInputPrograms) {
  stencil::StencilProgram p("TWO_IN", poly::Domain::box({1, 1}, {8, 8}));
  p.add_input("A", {{0, 0}, {0, 1}});
  p.add_input("B", {{0, 0}});
  EXPECT_THROW(plan_temporal(p, {.timesteps = 2, .block = 1}),
               TemporalConfigError);
}

TEST(PlanTemporal, RejectsNonBoxDomains) {
  const stencil::StencilProgram tri = stencil::triangular_demo(16);
  EXPECT_THROW(plan_temporal(tri, {.timesteps = 2, .block = 2}),
               TemporalDomainError);
}

TEST(PlanTemporal, ShrinkDomainsFollowWindowAlgebra) {
  // JACOBI4 window: reach 1 in every direction, so W = [-1,1]^2 and
  // generation g of T=4 iterates the target box grown by (4-g) on every
  // side.
  const stencil::StencilProgram p = stencil::jacobi4_2d(32, 40);
  TemporalConfig config{.timesteps = 4, .block = 2};
  const TemporalSchedule sched = plan_temporal(p, config);

  EXPECT_EQ(sched.num_passes, 2);
  ASSERT_EQ(sched.shapes.size(), 2u);  // one shape per pass under kShrink
  EXPECT_EQ(sched.pass_shape, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sched.first_generation, (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(sched.window_lo, (poly::IntVec{-1, -1}));
  EXPECT_EQ(sched.window_hi, (poly::IntVec{1, 1}));

  // Target box of jacobi4_2d(32, 40) is [1,30] x [1,38].
  EXPECT_EQ(sched.domain_lo, (poly::IntVec{1, 1}));
  EXPECT_EQ(sched.domain_hi, (poly::IntVec{30, 38}));

  const auto expect_box = [](const poly::Domain& d, poly::IntVec lo,
                             poly::IntVec hi) {
    poly::IntVec got_lo, got_hi;
    ASSERT_TRUE(d.as_single_box(&got_lo, &got_hi));
    EXPECT_EQ(got_lo, lo);
    EXPECT_EQ(got_hi, hi);
  };
  // Pass 0: generations 1 (grown by 3) and 2 (grown by 2).
  expect_box(sched.shapes[0].domains[0], {-2, -2}, {33, 41});
  expect_box(sched.shapes[0].domains[1], {-1, -1}, {32, 40});
  // Pass 1: generations 3 (grown by 1) and 4 (the target).
  expect_box(sched.shapes[1].domains[0], {0, 0}, {31, 39});
  expect_box(sched.shapes[1].domains[1], {1, 1}, {30, 38});

  // Pass handoff: pass 0's output box is exactly the box pass 1's first
  // replica window needs (one window beyond its own domain).
  poly::IntVec out_lo, out_hi;
  sched.pass_output_box(0, &out_lo, &out_hi);
  EXPECT_EQ(out_lo, (poly::IntVec{-1, -1}));
  EXPECT_EQ(out_hi, (poly::IntVec{32, 40}));
  sched.pass_output_box(1, &out_lo, &out_hi);
  EXPECT_EQ(out_lo, sched.domain_lo);
  EXPECT_EQ(out_hi, sched.domain_hi);
}

TEST(PlanTemporal, ValuePoliciesShareFullAndTailShapes) {
  const stencil::StencilProgram p = stencil::heat_2d(24, 28);
  TemporalConfig config{.timesteps = 5, .block = 2,
                        .boundary = BoundaryPolicy::kClamp};
  const TemporalSchedule sched = plan_temporal(p, config);

  EXPECT_EQ(sched.num_passes, 3);
  ASSERT_EQ(sched.shapes.size(), 2u);  // full (2 replicas) + tail (1)
  EXPECT_EQ(sched.shapes[0].replicas, 2u);
  EXPECT_EQ(sched.shapes[1].replicas, 1u);
  EXPECT_EQ(sched.pass_shape, (std::vector<std::size_t>{0, 0, 1}));
  EXPECT_EQ(sched.first_generation, (std::vector<std::int64_t>{1, 3, 5}));

  // Every replica iterates the target box; edges carry the policy and the
  // producer's box for the boundary mapping.
  for (const PassShape& shape : sched.shapes) {
    for (const poly::Domain& d : shape.domains) {
      poly::IntVec lo, hi;
      ASSERT_TRUE(d.as_single_box(&lo, &hi));
      EXPECT_EQ(lo, sched.domain_lo);
      EXPECT_EQ(hi, sched.domain_hi);
    }
    for (const pipeline::StageEdge& edge : shape.graph.edges()) {
      EXPECT_EQ(edge.policy.boundary, BoundaryPolicy::kClamp);
      EXPECT_EQ(edge.producer_lo, sched.domain_lo);
      EXPECT_EQ(edge.producer_hi, sched.domain_hi);
    }
  }
}

TEST(PlanTemporal, EvenDivisionUsesOneShapeUnderValuePolicy) {
  const stencil::StencilProgram p = stencil::jacobi8_2d(20, 20);
  const TemporalSchedule sched = plan_temporal(
      p, {.timesteps = 6, .block = 3,
          .boundary = BoundaryPolicy::kConstant, .constant_value = 2.5});
  EXPECT_EQ(sched.num_passes, 2);
  ASSERT_EQ(sched.shapes.size(), 1u);
  EXPECT_EQ(sched.shapes[0].replicas, 3u);
  EXPECT_EQ(sched.pass_shape, (std::vector<std::size_t>{0, 0}));
  for (const pipeline::StageEdge& edge : sched.shapes[0].graph.edges()) {
    EXPECT_EQ(edge.policy.boundary, BoundaryPolicy::kConstant);
    EXPECT_EQ(edge.policy.constant_value, 2.5);
  }
}

TEST(MakeReplica, PreservesWeightedSumStructure) {
  const stencil::StencilProgram base = stencil::heat_2d(16, 16);
  const stencil::StencilProgram replica =
      make_replica(base, base.iteration(), "HEAT_2D.t1");
  EXPECT_EQ(replica.name(), "HEAT_2D.t1");
  EXPECT_EQ(replica.weighted_sum_weights(), base.weighted_sum_weights());
  ASSERT_EQ(replica.inputs().size(), 1u);
  EXPECT_EQ(replica.inputs()[0].name, base.inputs()[0].name);
  ASSERT_EQ(replica.inputs()[0].refs.size(), base.inputs()[0].refs.size());
  for (std::size_t r = 0; r < replica.inputs()[0].refs.size(); ++r) {
    EXPECT_EQ(replica.inputs()[0].refs[r].offset,
              base.inputs()[0].refs[r].offset);
  }
}

TEST(MakeReplica, PreservesOpaqueKernels) {
  const stencil::StencilProgram base = stencil::life_2d(12, 12);
  const stencil::StencilProgram replica =
      make_replica(base, base.iteration(), "LIFE.t1");
  EXPECT_TRUE(replica.weighted_sum_weights().empty());
  // Same rule: a live cell with two live neighbours survives.
  std::vector<double> v(9, 0.0);
  v[4] = 1.0;
  v[0] = 1.0;
  v[8] = 1.0;
  EXPECT_EQ(replica.kernel()(v), base.kernel()(v));
  EXPECT_EQ(replica.kernel()(v), 1.0);
}

TEST(MakeReplica, DefaultKernelReplicatesAsEqualWeights) {
  stencil::StencilProgram base("DEFAULT",
                               poly::Domain::box({1, 1}, {8, 8}));
  base.add_input("A", {{0, -1}, {0, 0}, {0, 1}});
  const stencil::StencilProgram replica =
      make_replica(base, base.iteration(), "DEFAULT.t1");
  // The lazy equal-weight default materializes into explicit weights, so
  // the vector path sees the linear structure in every replica.
  EXPECT_EQ(replica.weighted_sum_weights(),
            (std::vector<double>{1.0 / 3, 1.0 / 3, 1.0 / 3}));
}

TEST(RandomIterativeTriple, IsDeterministicAndValid) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const testing::IterativeTriple a = testing::random_iterative_triple(seed);
    const testing::IterativeTriple b = testing::random_iterative_triple(seed);
    EXPECT_EQ(a.program.name(), b.program.name());
    EXPECT_EQ(a.timesteps, b.timesteps);
    EXPECT_EQ(a.block, b.block);
    EXPECT_EQ(a.boundary, b.boundary);
    ASSERT_GE(a.timesteps, 1);
    ASSERT_GE(a.block, 1);
    ASSERT_LE(a.block, a.timesteps);
    // Every triple must plan cleanly.
    const TemporalSchedule sched = plan_temporal(
        a.program, {.timesteps = a.timesteps, .block = a.block,
                    .boundary = a.boundary,
                    .constant_value = a.constant_value});
    EXPECT_EQ(sched.num_passes,
              (a.timesteps + a.block - 1) / a.block);
  }
}

}  // namespace
}  // namespace nup::temporal
