// TemporalRunner end-to-end: the unrolled replica pipeline must be
// bit-identical to the naive T-sweep golden across gallery kernels, every
// boundary policy, datapath widths 1 and 4, and a large random-triple
// sweep; degenerate configurations (T=1, B=1, B>T, T%B != 0) must behave
// exactly as specified; the convergence monitor must early-exit without
// leaking slabs or growing the pinned-design set.

#include "temporal/runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "temporal/golden.hpp"
#include "testing/stencil_gen.hpp"

namespace nup::temporal {
namespace {

using stencil::BoundaryPolicy;

RunnerOptions quiet_options(obs::Registry* registry = nullptr) {
  RunnerOptions options;
  options.pipeline.threads_per_stage = 2;
  options.pipeline.metrics = registry;
  return options;
}

std::int64_t gauge_sum_with_suffix(const obs::MetricsSnapshot& snap,
                                   const std::string& suffix) {
  std::int64_t sum = 0;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.kind == obs::MetricSample::Kind::kGauge &&
        s.name.size() >= suffix.size() &&
        s.name.compare(s.name.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      sum += s.value;
    }
  }
  return sum;
}

// ---- degenerate configurations -----------------------------------------

TEST(TemporalRunner, SingleTimestepIsBitIdenticalToOnePlainPass) {
  const stencil::StencilProgram p = stencil::jacobi4_2d(16, 20);
  const std::vector<double> plain = stencil::run_golden(p, 42).outputs;
  for (const BoundaryPolicy policy :
       {BoundaryPolicy::kShrink, BoundaryPolicy::kClamp,
        BoundaryPolicy::kWrap, BoundaryPolicy::kConstant}) {
    obs::Registry registry;
    TemporalRunner runner(p, {.timesteps = 1, .block = 1,
                              .boundary = policy, .constant_value = 3.0},
                          quiet_options(&registry));
    const FrameOutcome outcome = runner.run(42);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_EQ(outcome.outputs, plain) << stencil::to_string(policy);
    EXPECT_EQ(outcome.generations_completed, 1);
    EXPECT_EQ(outcome.passes_completed, 1);
    EXPECT_FALSE(outcome.converged_early);
  }
}

TEST(TemporalRunner, BlockChoiceNeverChangesBits) {
  const stencil::StencilProgram p = stencil::heat_2d(18, 22);
  const TemporalConfig base{.timesteps = 4, .block = 1,
                            .boundary = BoundaryPolicy::kClamp};
  const std::vector<double> golden = run_golden_sweeps(p, base, 7);
  for (const std::int64_t block : {1, 2, 4}) {
    TemporalConfig config = base;
    config.block = block;
    TemporalRunner runner(p, config, quiet_options());
    const FrameOutcome outcome = runner.run(7);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    EXPECT_EQ(outcome.outputs, golden) << "B=" << block;
    EXPECT_EQ(outcome.generations_completed, 4);
    EXPECT_EQ(outcome.passes_completed, (4 + block - 1) / block);
  }
}

TEST(TemporalRunner, BlockBeyondTimestepsIsATypedError) {
  const stencil::StencilProgram p = stencil::jacobi4_2d(12, 12);
  EXPECT_THROW(TemporalRunner(p, {.timesteps = 3, .block = 4}),
               TemporalConfigError);
}

TEST(TemporalRunner, ShortFinalPassCoversTheRemainder) {
  const stencil::StencilProgram p = stencil::jacobi8_2d(16, 18);
  const TemporalConfig config{.timesteps = 5, .block = 2,
                              .boundary = BoundaryPolicy::kConstant,
                              .constant_value = 0.5};
  TemporalRunner runner(p, config, quiet_options());
  const FrameOutcome outcome = runner.run(13);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_EQ(outcome.passes_completed, 3);  // 2 + 2 + 1
  EXPECT_EQ(outcome.generations_completed, 5);
  EXPECT_EQ(outcome.outputs, run_golden_sweeps(p, config, 13));
}

TEST(TemporalRunner, RunAfterShutdownThrows) {
  const stencil::StencilProgram p = stencil::jacobi4_2d(10, 10);
  TemporalRunner runner(p, {.timesteps = 2, .block = 2}, quiet_options());
  runner.shutdown();
  runner.shutdown();  // idempotent
  EXPECT_THROW(runner.run(1), TemporalError);
}

// ---- gallery bit-identity ----------------------------------------------

TEST(TemporalRunner, GalleryKernelsMatchGoldenAcrossPoliciesAndWidths) {
  struct Case {
    stencil::StencilProgram program;
    TemporalConfig config;
  };
  const Case cases[] = {
      {stencil::jacobi4_2d(20, 24),
       {.timesteps = 4, .block = 2, .boundary = BoundaryPolicy::kClamp}},
      {stencil::jacobi8_2d(18, 20),
       {.timesteps = 3, .block = 3, .boundary = BoundaryPolicy::kShrink}},
      {stencil::heat_2d(20, 24),
       {.timesteps = 5, .block = 2, .boundary = BoundaryPolicy::kConstant,
        .constant_value = 0.25}},
      {stencil::life_2d(12, 14),
       {.timesteps = 3, .block = 2, .boundary = BoundaryPolicy::kWrap}},
      {stencil::denoise_2d(20, 24),
       {.timesteps = 4, .block = 2, .boundary = BoundaryPolicy::kClamp}},
  };
  for (const Case& c : cases) {
    const std::vector<double> golden =
        run_golden_sweeps(c.program, c.config, 99);
    for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
      RunnerOptions options = quiet_options();
      options.pipeline.build.datapath_width = width;
      TemporalRunner runner(c.program, c.config, options);
      const FrameOutcome outcome = runner.run(99);
      ASSERT_TRUE(outcome.ok())
          << c.program.name() << " W=" << width << ": " << outcome.error;
      EXPECT_EQ(outcome.outputs, golden)
          << c.program.name() << " W=" << width;
    }
  }
}

TEST(TemporalRunner, MultiFrameOverlapMatchesSequentialRuns) {
  const stencil::StencilProgram p = stencil::heat_2d(16, 20);
  const TemporalConfig config{.timesteps = 4, .block = 2,
                              .boundary = BoundaryPolicy::kClamp};
  obs::Registry registry;
  RunnerOptions options = quiet_options(&registry);
  options.max_passes_in_flight = 3;
  TemporalRunner runner(p, config, options);

  const std::vector<std::uint64_t> seeds{11, 12, 13, 14, 15};
  const std::vector<FrameOutcome> outcomes = runner.run_frames(seeds);
  ASSERT_EQ(outcomes.size(), seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    ASSERT_TRUE(outcomes[k].ok()) << outcomes[k].error;
    EXPECT_EQ(outcomes[k].seed, seeds[k]);
    EXPECT_EQ(outcomes[k].outputs,
              run_golden_sweeps(p, config, seeds[k]))
        << "seed " << seeds[k];
  }
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("temporal.HEAT_2D.frames_completed"), 5);
  EXPECT_EQ(snap.value_of("temporal.HEAT_2D.converged_frames", 0), 0);
  EXPECT_EQ(snap.value_of("temporal.HEAT_2D.passes_completed"), 10);
  EXPECT_EQ(snap.value_of("temporal.HEAT_2D.generations_completed"), 20);
  // Every inter-replica slab went back to its pool.
  EXPECT_EQ(gauge_sum_with_suffix(snap, "buffer_tiles"), 0);
}

// ---- convergence monitor -----------------------------------------------

TEST(TemporalRunner, ConvergenceEarlyExitStopsPassesCleanly) {
  // A kernel that ignores its inputs reaches its fixed point at
  // generation 1, so the monitor fires on the first measurable residual
  // (pass 1) and the last two passes never run.
  stencil::StencilProgram p("CONST_ONE",
                            poly::Domain::box({1, 1}, {14, 18}));
  p.add_input("A", {{0, -1}, {0, 0}, {0, 1}});
  p.set_kernel([](const std::vector<double>&) { return 1.0; });

  obs::Registry registry;
  RunnerOptions options = quiet_options(&registry);
  options.tolerance = 1e-12;
  TemporalRunner runner(
      p, {.timesteps = 8, .block = 2, .boundary = BoundaryPolicy::kClamp},
      options);

  const FrameOutcome outcome = runner.run(5);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_TRUE(outcome.converged_early);
  EXPECT_EQ(outcome.passes_completed, 2);
  EXPECT_EQ(outcome.generations_completed, 4);
  EXPECT_EQ(outcome.last_residual, 0.0);
  EXPECT_EQ(outcome.outputs,
            std::vector<double>(14 * 18, 1.0));

  const std::size_t pinned = runner.pinned_designs();
  EXPECT_GT(pinned, 0u);

  // More frames after an early exit: same bits, no design-set growth, no
  // resident slabs left behind.
  const std::vector<FrameOutcome> more = runner.run_frames({6, 7});
  for (const FrameOutcome& o : more) {
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_TRUE(o.converged_early);
  }
  EXPECT_EQ(runner.pinned_designs(), pinned);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("temporal.CONST_ONE.converged_frames"), 3);
  EXPECT_EQ(snap.value_of("temporal.CONST_ONE.frames_completed"), 3);
  // 8 - 4 generations saved per frame.
  EXPECT_EQ(snap.value_of("temporal.CONST_ONE.generations_saved"), 12);
  EXPECT_EQ(gauge_sum_with_suffix(snap, "buffer_tiles"), 0);
}

TEST(TemporalRunner, ZeroToleranceDisablesTheMonitor) {
  stencil::StencilProgram p("CONST_TWO",
                            poly::Domain::box({1, 1}, {10, 10}));
  p.add_input("A", {{0, 0}, {1, 0}});
  p.set_kernel([](const std::vector<double>&) { return 2.0; });
  TemporalRunner runner(
      p, {.timesteps = 6, .block = 2, .boundary = BoundaryPolicy::kClamp},
      quiet_options());
  const FrameOutcome outcome = runner.run(1);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_FALSE(outcome.converged_early);
  EXPECT_EQ(outcome.passes_completed, 3);
  EXPECT_EQ(outcome.generations_completed, 6);
  EXPECT_EQ(outcome.last_residual, -1.0);  // never measured
}

// ---- random-triple sweep -----------------------------------------------

// 120 random (stencil, T, B, policy) triples, alternating datapath widths
// 1 and 4 and alternating forced tile shapes, each bit-identical to the
// naive T-sweep reference.
TEST(TemporalRunner, RandomTriplesAreBitIdenticalToGolden) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const nup::testing::IterativeTriple triple =
        nup::testing::random_iterative_triple(seed);
    const TemporalConfig config{.timesteps = triple.timesteps,
                                .block = triple.block,
                                .boundary = triple.boundary,
                                .constant_value = triple.constant_value};
    RunnerOptions options;
    options.pipeline.threads_per_stage = 1;
    options.pipeline.build.datapath_width = (seed % 2 == 0) ? 4 : 1;
    if (seed % 3 == 0) options.pipeline.tile_shape = {4, 0};
    TemporalRunner runner(triple.program, config, options);
    const FrameOutcome outcome = runner.run(1000 + seed);
    ASSERT_TRUE(outcome.ok())
        << triple.program.name() << ": " << outcome.error;
    EXPECT_EQ(outcome.outputs,
              run_golden_sweeps(triple.program, config, 1000 + seed))
        << triple.program.name() << " T=" << triple.timesteps
        << " B=" << triple.block << " policy "
        << stencil::to_string(triple.boundary) << " W="
        << options.pipeline.build.datapath_width;
  }
}

}  // namespace
}  // namespace nup::temporal
