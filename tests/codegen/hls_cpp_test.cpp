#include "codegen/hls_cpp.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "stencil/gallery.hpp"

namespace nup::codegen {
namespace {

TEST(HlsCpp, TransformedKernelHasPipelinePragma) {
  const std::string code =
      emit_transformed_kernel(stencil::denoise_2d(32, 40));
  EXPECT_NE(code.find("#pragma HLS pipeline II=1"), std::string::npos);
}

TEST(HlsCpp, OnePortPerReference) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 40);
  const std::string code = emit_transformed_kernel(p);
  for (std::size_t k = 0; k < p.total_references(); ++k) {
    EXPECT_NE(code.find("A_" + std::to_string(k)), std::string::npos);
  }
  EXPECT_NE(code.find("volatile const float*"), std::string::npos);
}

TEST(HlsCpp, PortCommentsNameOriginalReferences) {
  const std::string code =
      emit_transformed_kernel(stencil::denoise_2d(32, 40));
  EXPECT_NE(code.find("A[i-1][j]"), std::string::npos);
  EXPECT_NE(code.find("A[i+1][j]"), std::string::npos);
}

TEST(HlsCpp, TripCountMatchesIterationDomain) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 40);
  const std::string code = emit_transformed_kernel(p);
  EXPECT_NE(code.find("t < " + std::to_string(p.iteration().count()) + "L"),
            std::string::npos);
}

TEST(HlsCpp, OriginalCodeRoundTrips) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 40);
  const std::string code = emit_original_code(p);
  EXPECT_NE(code.find("for (int i"), std::string::npos);
  EXPECT_NE(code.find("A[i][j+1]"), std::string::npos);
}

TEST(HlsCpp, IntegrationHeaderListsDepths) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const std::string header =
      emit_integration_header(p, arch::build_design(p));
  EXPECT_NE(header.find("kFifoDepths_A[] = {1023, 1, 1, 1023}"),
            std::string::npos);
  EXPECT_NE(header.find("kPorts_A = 5"), std::string::npos);
  EXPECT_NE(header.find("kIterations"), std::string::npos);
}

TEST(HlsCpp, IntegrationHeaderMarksCutFifos) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(design.systems[0], 1);
  const std::string header = emit_integration_header(p, design);
  EXPECT_NE(header.find("{0, 1, 1, 1023}"), std::string::npos);
  EXPECT_NE(header.find("2 off-chip stream(s)"), std::string::npos);
}

TEST(HlsCpp, MultiArrayPorts) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {6, 6}));
  p.add_input("A", {{0, 0}, {0, -1}});
  p.add_input("W", {{0, 0}});
  const std::string code = emit_transformed_kernel(p);
  EXPECT_NE(code.find("A_0"), std::string::npos);
  EXPECT_NE(code.find("A_1"), std::string::npos);
  EXPECT_NE(code.find("W_2"), std::string::npos);
}

}  // namespace
}  // namespace nup::codegen
