#include "codegen/verilog.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "stencil/gallery.hpp"

namespace nup::codegen {
namespace {

std::string denoise_rtl() {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 40);
  return emit_verilog(p, arch::build_design(p));
}

TEST(Verilog, LintClean) {
  EXPECT_EQ(lint_verilog(denoise_rtl()), "");
}

TEST(Verilog, LintCleanForAllBenchmarks) {
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const std::string rtl = emit_verilog(p, arch::build_design(p));
    EXPECT_EQ(lint_verilog(rtl), "") << p.name();
  }
}

TEST(Verilog, ContainsExpectedModules) {
  const std::string rtl = denoise_rtl();
  EXPECT_NE(rtl.find("module denoise_reuse_fifo"), std::string::npos);
  EXPECT_NE(rtl.find("module denoise_top"), std::string::npos);
  for (int k = 0; k < 5; ++k) {
    EXPECT_NE(rtl.find("module denoise_filter_s0_f" + std::to_string(k)),
              std::string::npos);
  }
}

TEST(Verilog, FifoDepthsAreNonUniform) {
  const std::string rtl = denoise_rtl();
  // 32x40 grid: FIFO depths 39, 1, 1, 39.
  EXPECT_NE(rtl.find(".DEPTH(39)"), std::string::npos);
  EXPECT_NE(rtl.find(".DEPTH(1)"), std::string::npos);
}

TEST(Verilog, OnePortPerReference) {
  const std::string rtl = denoise_rtl();
  for (int k = 0; k < 5; ++k) {
    EXPECT_NE(rtl.find("port_s0_f" + std::to_string(k)),
              std::string::npos);
  }
}

TEST(Verilog, StreamHandshakePresent) {
  const std::string rtl = denoise_rtl();
  EXPECT_NE(rtl.find("s0_stream0_valid"), std::string::npos);
  EXPECT_NE(rtl.find("s0_stream0_ready"), std::string::npos);
  EXPECT_NE(rtl.find("kernel_fire"), std::string::npos);
  EXPECT_NE(rtl.find("kernel_ready"), std::string::npos);
}

TEST(Verilog, TradedDesignExposesExtraStreams) {
  const stencil::StencilProgram p = stencil::denoise_2d(32, 40);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(design.systems[0], 1);
  const std::string rtl = emit_verilog(p, design);
  EXPECT_EQ(lint_verilog(rtl), "");
  EXPECT_NE(rtl.find("s0_stream1_valid"), std::string::npos);
}

TEST(Verilog, MembershipUsesCounters) {
  const std::string rtl = denoise_rtl();
  EXPECT_NE(rtl.find("cnt0"), std::string::npos);
  EXPECT_NE(rtl.find("cnt1"), std::string::npos);
  EXPECT_NE(rtl.find(">= 0"), std::string::npos);
}

TEST(Verilog, NonRectangularDomainEmitsGeneralConstraints) {
  const stencil::StencilProgram p = stencil::skewed_demo(16, 24);
  const std::string rtl = emit_verilog(p, arch::build_design(p));
  EXPECT_EQ(lint_verilog(rtl), "");
  // Skewed constraint mixes both counters in one inequality.
  EXPECT_NE(rtl.find("cnt0 + (1) * cnt1"), std::string::npos);
}

TEST(Verilog, CustomPrefixRespected) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  VerilogOptions options;
  options.module_prefix = "acc";
  const std::string rtl =
      emit_verilog(p, arch::build_design(p), options);
  EXPECT_NE(rtl.find("module acc_top"), std::string::npos);
  EXPECT_EQ(rtl.find("module denoise_top"), std::string::npos);
}

TEST(Verilog, HeaderEchoesSourceCode) {
  const std::string rtl = denoise_rtl();
  EXPECT_NE(rtl.find("// for (int i = 1"), std::string::npos);
}

TEST(Testbench, SelfCheckingStructure) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string tb = emit_testbench(p, design);
  EXPECT_NE(tb.find("module denoise_tb"), std::string::npos);
  EXPECT_NE(tb.find("EXPECTED_FIRES = " +
                    std::to_string(p.iteration().count())),
            std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
  EXPECT_NE(tb.find("FAIL"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
}

TEST(Testbench, CombinedSourcesLintClean) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string combined =
      emit_verilog(p, design) + "\n" + emit_testbench(p, design);
  EXPECT_EQ(lint_verilog(combined), "");
}

TEST(Lint, DetectsUnbalancedModules) {
  EXPECT_NE(lint_verilog("module a;\n"), "");
  EXPECT_NE(lint_verilog("endmodule\n"), "");
  EXPECT_EQ(lint_verilog("module a;\nendmodule\n"), "");
}

TEST(Lint, DetectsUnbalancedBeginEnd) {
  EXPECT_NE(lint_verilog("module a;\nalways @(posedge c) begin\nendmodule\n"),
            "");
}

TEST(Lint, DetectsUndefinedInstance) {
  const std::string text =
      "module top;\n  missing_mod u_x (.a(b));\nendmodule\n";
  EXPECT_NE(lint_verilog(text), "");
}

}  // namespace
}  // namespace nup::codegen
