// Edge cases of the RTL generator: degenerate chains, deep FIFOs, unusual
// names, multi-array tops -- each emitted design must lint clean and,
// where small enough, execute correctly in the interpreter.

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "codegen/verilog.hpp"
#include "poly/reuse.hpp"
#include "stencil/gallery.hpp"
#include "vsim/interp.hpp"

namespace nup::codegen {
namespace {

TEST(VerilogEdge, SingleReferenceChainHasNoFifos) {
  stencil::StencilProgram p("COPY", poly::Domain::box({0, 0}, {5, 7}));
  p.add_input("A", {{0, 0}});
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string rtl = emit_verilog(p, design);
  EXPECT_EQ(lint_verilog(rtl), "");
  EXPECT_EQ(rtl.find("_reuse_fifo #("), rtl.find("_reuse_fifo #("));
  EXPECT_EQ(rtl.find("u_s0_q0"), std::string::npos);  // no instances

  // And it runs: every element forwards, one fire per element.
  vsim::VerilogSim sim(rtl, "copy_top");
  sim.poke("rst", 1);
  sim.poke("kernel_ready", 1);
  sim.poke("s0_stream0_valid", 1);
  sim.poke("s0_stream0_data", 0);
  sim.step_clock();
  sim.poke("rst", 0);
  std::uint64_t seq = 0;
  std::int64_t fires = 0;
  for (int cycle = 0; cycle < 200 && fires < 48; ++cycle) {
    sim.poke("s0_stream0_data", seq);
    sim.eval();
    if (sim.peek("kernel_fire") != 0) {
      EXPECT_EQ(sim.peek("port_s0_f0"), static_cast<std::uint64_t>(fires));
      ++fires;
    }
    const bool ready = sim.peek("s0_stream0_ready") != 0;
    sim.step_clock();
    if (ready) ++seq;
  }
  EXPECT_EQ(fires, 48);
}

TEST(VerilogEdge, NameSanitization) {
  stencil::StencilProgram p("3-weird name!", poly::Domain::box({0}, {7}));
  p.add_input("A", {{0}, {-1}});
  const std::string rtl = emit_verilog(p, arch::build_design(p));
  EXPECT_EQ(lint_verilog(rtl), "");
  EXPECT_NE(rtl.find("module m3_weird_name__top"), std::string::npos);
}

TEST(VerilogEdge, OneDimensionalChain) {
  stencil::StencilProgram p("FIR", poly::Domain::box({2}, {61}));
  p.add_input("A", {{-2}, {-1}, {0}});
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::string rtl = emit_verilog(p, design);
  EXPECT_EQ(lint_verilog(rtl), "");
  // 1-D filters carry a single counter.
  EXPECT_NE(rtl.find("cnt0"), std::string::npos);
  EXPECT_EQ(rtl.find("cnt1"), std::string::npos);
}

TEST(VerilogEdge, DeepFifoParameters) {
  // SEGMENTATION-scale FIFO depths must produce wide-enough ADDR params.
  const stencil::StencilProgram p = stencil::segmentation_3d();
  const std::string rtl = emit_verilog(p, arch::build_design(p));
  EXPECT_EQ(lint_verilog(rtl), "");
  EXPECT_NE(rtl.find(".DEPTH(16127)"), std::string::npos);
  EXPECT_NE(rtl.find(".ADDR(14)"), std::string::npos);  // 2^14 = 16384
}

TEST(VerilogEdge, MultiArrayTopHasAllStreams) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {8, 8}));
  p.add_input("A", {{0, 0}, {0, -1}});
  p.add_input("W", {{0, 0}, {-1, 0}});
  const std::string rtl = emit_verilog(p, arch::build_design(p));
  EXPECT_EQ(lint_verilog(rtl), "");
  EXPECT_NE(rtl.find("s0_stream0_valid"), std::string::npos);
  EXPECT_NE(rtl.find("s1_stream0_valid"), std::string::npos);
  EXPECT_NE(rtl.find("port_s1_f1"), std::string::npos);
}

TEST(VerilogEdge, UnionDomainMembershipEmitsAllPieces) {
  // A two-piece iteration domain produces an OR of piece conjunctions in
  // the filters.
  poly::Domain two = poly::Domain::box({1, 1}, {3, 6});
  two.add_piece(poly::Polyhedron::box({5, 1}, {7, 6}));
  stencil::StencilProgram p("SPLIT", two);
  p.add_input("A", {{0, 0}, {0, -1}});
  const std::string rtl = emit_verilog(p, arch::build_design(p));
  EXPECT_EQ(lint_verilog(rtl), "");
  EXPECT_NE(rtl.find(") || ("), std::string::npos);
}

TEST(VerilogEdge, WideDataOption) {
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  VerilogOptions options;
  options.data_width = 64;
  const std::string rtl =
      emit_verilog(p, arch::build_design(p), options);
  EXPECT_EQ(lint_verilog(rtl), "");
  EXPECT_NE(rtl.find("[63:0]"), std::string::npos);
  EXPECT_NE(rtl.find(".WIDTH(64)"), std::string::npos);
}

}  // namespace
}  // namespace nup::codegen
