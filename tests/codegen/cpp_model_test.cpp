#include "codegen/cpp_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"

namespace nup::codegen {
namespace {

struct ModelRun {
  bool ok = false;
  long fires = 0;
  long cycles = 0;
  std::string checksum;
};

/// Writes the emitted model, compiles it with the system compiler and
/// runs it.
ModelRun compile_and_run(const std::string& source,
                         const std::string& tag) {
  const std::string base = "/tmp/nup_model_" + tag;
  {
    std::ofstream out(base + ".cpp");
    out << source;
  }
  const std::string compile =
      "c++ -std=c++17 -O1 -o " + base + " " + base + ".cpp 2>" + base +
      ".log";
  ModelRun run;
  if (std::system(compile.c_str()) != 0) return run;
  FILE* pipe = popen((base + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return run;
  char line[256] = {0};
  if (std::fgets(line, sizeof(line), pipe) != nullptr) {
    char checksum[64] = {0};
    if (std::sscanf(line, "FIRES=%ld CYCLES=%ld CHECKSUM=%63s", &run.fires,
                    &run.cycles, checksum) == 3) {
      run.checksum = checksum;
      run.ok = true;
    }
  }
  pclose(pipe);
  return run;
}

std::string hex64(std::uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

void expect_model_matches(const stencil::StencilProgram& p,
                          const arch::AcceleratorDesign& design,
                          const std::string& tag) {
  const ModelRun run = compile_and_run(emit_cpp_model(p, design), tag);
  ASSERT_TRUE(run.ok) << "emitted model failed to build/run (see /tmp/"
                         "nup_model_" << tag << ".log)";
  EXPECT_EQ(run.fires, p.iteration().count());
  EXPECT_EQ(run.checksum, hex64(expected_model_checksum(p, design)));

  sim::SimOptions options;
  options.record_outputs = false;
  const sim::SimResult cxx = sim::simulate(p, design, options);
  EXPECT_EQ(run.cycles, cxx.cycles)
      << "emitted model and library simulator disagree on timing";
}

TEST(CppModel, EmitsSelfContainedSource) {
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  const std::string source = emit_cpp_model(p, arch::build_design(p));
  EXPECT_NE(source.find("int main()"), std::string::npos);
  EXPECT_NE(source.find("TOTAL_FIRES = 80"), std::string::npos);
  EXPECT_EQ(source.find("#include \"nup"), std::string::npos);
}

TEST(CppModel, DenoiseModelMatchesLibrary) {
  const stencil::StencilProgram p = stencil::denoise_2d(12, 16);
  expect_model_matches(p, arch::build_design(p), "denoise");
}

TEST(CppModel, SobelModelMatchesLibrary) {
  const stencil::StencilProgram p = stencil::sobel_2d(10, 12);
  expect_model_matches(p, arch::build_design(p), "sobel");
}

TEST(CppModel, ThreeDModelMatchesLibrary) {
  const stencil::StencilProgram p = stencil::heat_3d(5, 6, 7);
  expect_model_matches(p, arch::build_design(p), "heat3d");
}

TEST(CppModel, TriangularDomainModel) {
  const stencil::StencilProgram p = stencil::triangular_demo(12);
  expect_model_matches(p, arch::build_design(p), "triangular");
}

TEST(CppModel, TradedDesignModel) {
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(design.systems[0], 1);
  expect_model_matches(p, design, "traded");
}

TEST(CppModel, MultiArrayModel) {
  stencil::StencilProgram p("TWO", poly::Domain::box({1, 1}, {8, 10}));
  p.add_input("A", {{-1, 0}, {0, 0}, {1, 0}});
  p.add_input("W", {{0, -1}, {0, 1}});
  expect_model_matches(p, arch::build_design(p), "two");
}

}  // namespace
}  // namespace nup::codegen
