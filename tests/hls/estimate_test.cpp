#include "hls/estimate.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "stencil/gallery.hpp"

namespace nup::hls {
namespace {

TEST(Bram18k, AspectRatioSelection) {
  EXPECT_EQ(bram18k_blocks(0, 32), 0);
  EXPECT_EQ(bram18k_blocks(512, 32), 1);   // 512x36
  EXPECT_EQ(bram18k_blocks(1024, 32), 2);
  EXPECT_EQ(bram18k_blocks(1024, 18), 1);  // 1024x18
  EXPECT_EQ(bram18k_blocks(16384, 1), 1);  // 16384x1
  EXPECT_EQ(bram18k_blocks(1, 32), 1);
}

TEST(Bram18k, StorageBoundForDeepBuffers) {
  // Deep 32-bit buffers approach the bits/18Kb bound x2 (32 bits needs two
  // 16-bit-ish column groups).
  const std::int64_t blocks = bram18k_blocks(16384, 32);
  EXPECT_GE(blocks, 16384 * 32 / (18 * 1024));
  EXPECT_LE(blocks, 40);
}

TEST(EstimateStreaming, DenoiseUsesFourBrams) {
  // Two 1023-deep FIFOs -> 2 BRAM18K each at 32 bits; the unit FIFOs are
  // registers (Table 2's heterogeneous mapping).
  const stencil::StencilProgram p = stencil::denoise_2d();
  const ResourceUsage usage = estimate_streaming(
      arch::build_design(p), p, virtex7_485t());
  EXPECT_EQ(usage.bram18k, 4);
  EXPECT_EQ(usage.dsp48, 0);
  EXPECT_GT(usage.slices, 0);
}

TEST(EstimateStreaming, NoDspEver) {
  const DeviceModel device = virtex7_485t();
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const ResourceUsage usage =
        estimate_streaming(arch::build_design(p), p, device);
    EXPECT_EQ(usage.dsp48, 0) << p.name();
  }
}

TEST(EstimateStreaming, BicubicNeedsNoBram) {
  // All three FIFOs have depth 2: pure register mapping.
  const stencil::StencilProgram p = stencil::bicubic_2d();
  const ResourceUsage usage = estimate_streaming(
      arch::build_design(p), p, virtex7_485t());
  EXPECT_EQ(usage.bram18k, 0);
}

TEST(EstimateStreaming, MeetsTargetPeriod) {
  const DeviceModel device = virtex7_485t();
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const ResourceUsage usage =
        estimate_streaming(arch::build_design(p), p, device);
    EXPECT_LT(usage.clock_period_ns, device.target_period_ns) << p.name();
    EXPECT_GT(usage.clock_period_ns, 1.0) << p.name();
  }
}

TEST(EstimateUniform, DspForNonPowerOfTwoBanks) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const baseline::UniformPartition part = baseline::gmp_partition(p, 0);
  ASSERT_EQ(part.banks, 5u);
  const ResourceUsage usage =
      estimate_uniform(part, p.total_references(), virtex7_485t());
  // 5 load ports + 1 store port, 5 DSPs each for mod+div.
  EXPECT_EQ(usage.dsp48, 30);
  EXPECT_GT(usage.bram18k, 0);
}

TEST(EstimateUniform, PowerOfTwoBanksNeedNoDsp) {
  baseline::UniformPartition part;
  part.banks = 8;
  part.bank_depth = 256;
  part.stored_span = 2048;
  part.extents = {64, 64};
  part.padded_extents = {64, 64};
  const ResourceUsage usage = estimate_uniform(part, 4, virtex7_485t());
  EXPECT_EQ(usage.dsp48, 0);
}

TEST(EstimateUniform, EveryBankBurnsBram) {
  baseline::UniformPartition part;
  part.banks = 5;
  part.bank_depth = 2;  // tiny banks still occupy one BRAM each
  part.stored_span = 10;
  part.extents = {64, 64};
  part.padded_extents = {64, 64};
  const ResourceUsage usage = estimate_uniform(part, 4, virtex7_485t());
  EXPECT_EQ(usage.bram18k, 5);
}

TEST(Comparison, StreamingBeatsUniformOnEveryBenchmark) {
  // The Table 5 shape: fewer BRAMs, fewer slices, zero DSP on all six.
  const DeviceModel device = virtex7_485t();
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const ResourceUsage ours =
        estimate_streaming(arch::build_design(p), p, device);
    const ResourceUsage theirs = estimate_uniform(
        baseline::gmp_partition(p, 0), p.total_references(), device);
    EXPECT_LT(ours.bram18k, theirs.bram18k) << p.name();
    EXPECT_LE(ours.slices, theirs.slices) << p.name();
    EXPECT_LT(ours.dsp48, theirs.dsp48) << p.name();
    EXPECT_LE(ours.clock_period_ns, theirs.clock_period_ns) << p.name();
  }
}

TEST(Comparison, FitsOnTargetDevice) {
  const DeviceModel device = virtex7_485t();
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const ResourceUsage ours =
        estimate_streaming(arch::build_design(p), p, device);
    EXPECT_LT(ours.bram18k, device.bram18k) << p.name();
    EXPECT_LT(ours.slices, device.slices) << p.name();
  }
}

TEST(ResourceUsage, PlusEqualsAccumulates) {
  ResourceUsage a{1, 10, 2, 3.0};
  const ResourceUsage b{2, 20, 0, 4.5};
  a += b;
  EXPECT_EQ(a.bram18k, 3);
  EXPECT_EQ(a.slices, 30);
  EXPECT_EQ(a.dsp48, 2);
  EXPECT_DOUBLE_EQ(a.clock_period_ns, 4.5);
}

}  // namespace
}  // namespace nup::hls
