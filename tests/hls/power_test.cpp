#include "hls/power.hpp"

#include <gtest/gtest.h>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "stencil/gallery.hpp"

namespace nup::hls {
namespace {

PowerEstimate ours_power(const stencil::StencilProgram& p) {
  const DeviceModel device = virtex7_485t();
  return estimate_power(
      estimate_streaming(arch::build_design(p), p, device), device);
}

PowerEstimate baseline_power(const stencil::StencilProgram& p) {
  const DeviceModel device = virtex7_485t();
  return estimate_power(
      estimate_uniform(baseline::gmp_partition(p, 0),
                       p.total_references(), device),
      device);
}

TEST(Power, StaticDominatesUngatedTotal) {
  // The paper's XPower observation: total FPGA power is dominated by
  // static leakage and almost invariant across custom circuits.
  const PowerEstimate ours = ours_power(stencil::denoise_2d());
  const PowerEstimate theirs = baseline_power(stencil::denoise_2d());
  EXPECT_GT(ours.static_mw, 5 * ours.dynamic_mw);
  const double relative_gap =
      std::abs(ours.total_mw() - theirs.total_mw()) / theirs.total_mw();
  EXPECT_LT(relative_gap, 0.10);
}

TEST(Power, GatedPowerTracksResourceUsage) {
  // "If power gating is available, the FPGA power will be proportional to
  // resource usage, which is covered by Table 5."
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const PowerEstimate ours = ours_power(p);
    const PowerEstimate theirs = baseline_power(p);
    EXPECT_LT(ours.gated_mw, theirs.gated_mw) << p.name();
  }
}

TEST(Power, DynamicScalesWithClockAndActivity) {
  const DeviceModel device = virtex7_485t();
  const ResourceUsage usage{10, 1000, 5, 4.5};
  ActivityModel slow;
  slow.clock_mhz = 100.0;
  ActivityModel fast;
  fast.clock_mhz = 200.0;
  const PowerEstimate a = estimate_power(usage, device, slow);
  const PowerEstimate b = estimate_power(usage, device, fast);
  EXPECT_DOUBLE_EQ(b.dynamic_mw, 2.0 * a.dynamic_mw);

  ActivityModel busy = slow;
  busy.toggle_rate = 0.5;
  const PowerEstimate c = estimate_power(usage, device, busy);
  EXPECT_DOUBLE_EQ(c.dynamic_mw, 2.0 * a.dynamic_mw);
}

TEST(Power, ZeroUsageZeroDynamic) {
  const DeviceModel device = virtex7_485t();
  const PowerEstimate p = estimate_power(ResourceUsage{}, device);
  EXPECT_DOUBLE_EQ(p.dynamic_mw, 0.0);
  EXPECT_GT(p.static_mw, 0.0);
  EXPECT_DOUBLE_EQ(p.gated_mw, 0.0);
}

}  // namespace
}  // namespace nup::hls
