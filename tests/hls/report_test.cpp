#include "hls/report.hpp"

#include <gtest/gtest.h>

namespace nup::hls {
namespace {

std::vector<SynthesisComparison> sample_rows() {
  SynthesisComparison a;
  a.benchmark = "ALPHA";
  a.baseline = ResourceUsage{10, 400, 30, 4.9};
  a.ours = ResourceUsage{4, 300, 0, 4.4};
  SynthesisComparison b;
  b.benchmark = "BETA";
  b.baseline = ResourceUsage{20, 1000, 50, 4.8};
  b.ours = ResourceUsage{10, 800, 0, 4.8};
  return {a, b};
}

TEST(Report, DeltaComputation) {
  EXPECT_DOUBLE_EQ(SynthesisComparison::delta(4, 10), -0.6);
  EXPECT_DOUBLE_EQ(SynthesisComparison::delta(0, 30), -1.0);
  EXPECT_DOUBLE_EQ(SynthesisComparison::delta(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(SynthesisComparison::delta(12, 10), 0.2);
}

TEST(Report, AverageDeltas) {
  const SynthesisAverages avg = average_deltas(sample_rows());
  EXPECT_NEAR(avg.bram, (-0.6 + -0.5) / 2.0, 1e-12);
  EXPECT_NEAR(avg.slices, (-0.25 + -0.2) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(avg.dsp, -1.0);
}

TEST(Report, AverageOfEmptyIsZero) {
  const SynthesisAverages avg = average_deltas({});
  EXPECT_DOUBLE_EQ(avg.bram, 0.0);
  EXPECT_DOUBLE_EQ(avg.dsp, 0.0);
}

TEST(Report, RenderContainsAllSections) {
  const std::string text = render_synthesis_table(sample_rows());
  EXPECT_NE(text.find("ALPHA"), std::string::npos);
  EXPECT_NE(text.find("BETA"), std::string::npos);
  EXPECT_NE(text.find("[8]"), std::string::npos);
  EXPECT_NE(text.find("ours"), std::string::npos);
  EXPECT_NE(text.find("comp."), std::string::npos);
  EXPECT_NE(text.find("Average"), std::string::npos);
  EXPECT_NE(text.find("-100.0%"), std::string::npos);
}

TEST(Report, RenderShowsClockPeriods) {
  const std::string text = render_synthesis_table(sample_rows());
  EXPECT_NE(text.find("4.90"), std::string::npos);
  EXPECT_NE(text.find("4.40"), std::string::npos);
}

}  // namespace
}  // namespace nup::hls
