#include "testing/stencil_gen.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "poly/affine.hpp"
#include "poly/polyhedron.hpp"
#include "util/rng.hpp"

namespace nup::testing {

stencil::StencilProgram random_program(std::uint64_t seed,
                                       const StencilGenOptions& options) {
  // The draw order below is load-bearing: with default options it must
  // consume the Rng stream exactly like the legacy duplicated generators,
  // so historical seeds keep naming the same programs.
  Rng rng(seed * 2654435761u + 17);
  const std::size_t refs = static_cast<std::size_t>(
      rng.next_in(options.min_refs, options.max_refs));
  std::set<poly::IntVec> offsets;
  while (offsets.size() < refs) {
    offsets.insert({rng.next_in(-2, 2), rng.next_in(-3, 3)});
  }

  std::int64_t lo[2];
  std::int64_t hi[2];
  for (std::size_t d = 0; d < 2; ++d) {
    std::int64_t reach = 0;
    for (const poly::IntVec& f : offsets) {
      reach = std::max(reach, std::max(f[d], -f[d]));
    }
    lo[d] = reach;
    hi[d] = lo[d] + rng.next_in(options.min_extent, options.max_extent);
  }

  using Shape = StencilGenOptions::Shape;
  Shape shape = options.shape;
  if (shape == Shape::kBySeed) {
    shape = (seed % 2) == 1 ? Shape::kSheared : Shape::kRect;
  }

  poly::Domain domain;
  std::string prefix;
  switch (shape) {
    case Shape::kSheared: {
      const std::int64_t shear = rng.next_in(1, 2);
      poly::Polyhedron piece(2);
      piece.add(poly::make_constraint({1, 0}, -lo[0]));       // i >= lo0
      piece.add(poly::make_constraint({-1, 0}, hi[0]));       // i <= hi0
      piece.add(poly::make_constraint({-shear, 1}, -lo[1]));  // j-s*i >= lo1
      piece.add(poly::make_constraint({shear, -1}, hi[1]));   // j-s*i <= hi1
      domain = poly::Domain(std::move(piece));
      prefix = "RAND_SKEW_";
      break;
    }
    case Shape::kTriangular: {
      // Row at i holds j in [lo1, lo1 + (i - lo0)]: inner widths ramp
      // 1, 2, ..., extent+1, so every vector-width remainder class occurs.
      poly::Polyhedron piece(2);
      piece.add(poly::make_constraint({1, 0}, -lo[0]));           // i >= lo0
      piece.add(poly::make_constraint({-1, 0}, hi[0]));           // i <= hi0
      piece.add(poly::make_constraint({0, 1}, -lo[1]));           // j >= lo1
      piece.add(poly::make_constraint({1, -1}, lo[1] - lo[0]));   // j-lo1 <= i-lo0
      domain = poly::Domain(std::move(piece));
      prefix = "RAND_TRI_";
      break;
    }
    default: {
      domain = poly::Domain::box({lo[0], lo[1]}, {hi[0], hi[1]});
      prefix = "RAND_RECT_";
      break;
    }
  }

  stencil::StencilProgram p(prefix + std::to_string(seed), domain);
  p.add_input("A",
              std::vector<poly::IntVec>(offsets.begin(), offsets.end()));
  if (options.random_weights) {
    std::vector<double> weights;
    weights.reserve(refs);
    for (std::size_t k = 0; k < refs; ++k) {
      weights.push_back(rng.next_double() + 0.25);
    }
    p.set_weighted_sum(std::move(weights));
  }
  return p;
}

std::vector<stencil::StencilProgram> random_stage_pair(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 99);
  const std::int64_t a = 2;
  const std::int64_t b = a + rng.next_in(8, 14);
  const std::int64_t r2 = rng.next_in(1, 2);

  const auto random_stage = [&](const std::string& name, std::int64_t lo,
                                std::int64_t hi, std::int64_t radius) {
    const std::size_t refs = static_cast<std::size_t>(rng.next_in(2, 6));
    std::set<poly::IntVec> offsets;
    offsets.insert({0, 0});
    while (offsets.size() < refs) {
      offsets.insert(
          {rng.next_in(-radius, radius), rng.next_in(-radius, radius)});
    }
    stencil::StencilProgram p(name, poly::Domain::box({lo, lo}, {hi, hi}));
    p.add_input("A",
                std::vector<poly::IntVec>(offsets.begin(), offsets.end()));
    std::vector<double> weights;
    for (std::size_t k = 0; k < offsets.size(); ++k) {
      weights.push_back(rng.next_double() + 0.25);
    }
    p.set_weighted_sum(std::move(weights));
    return p;
  };

  return {random_stage("P1_" + std::to_string(seed), a, b, 2),
          random_stage("P2_" + std::to_string(seed), a + r2, b - r2, r2)};
}

IterativeTriple random_iterative_triple(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 123);
  const std::size_t refs = static_cast<std::size_t>(rng.next_in(2, 6));
  std::set<poly::IntVec> offsets;
  while (offsets.size() < refs) {
    offsets.insert({rng.next_in(-2, 2), rng.next_in(-2, 2)});
  }

  // Box domain only: the temporal unroller's replica algebra is defined on
  // boxes. Anchor at the window reach so even deep kShrink chains stay on
  // small coordinates.
  std::int64_t lo[2];
  std::int64_t hi[2];
  for (std::size_t d = 0; d < 2; ++d) {
    std::int64_t reach = 0;
    for (const poly::IntVec& f : offsets) {
      reach = std::max(reach, std::max(f[d], -f[d]));
    }
    lo[d] = reach;
    hi[d] = lo[d] + rng.next_in(6, 14);
  }

  IterativeTriple triple{
      stencil::StencilProgram(
          "RAND_ITER_" + std::to_string(seed),
          poly::Domain::box({lo[0], lo[1]}, {hi[0], hi[1]}))};
  triple.program.add_input(
      "A", std::vector<poly::IntVec>(offsets.begin(), offsets.end()));
  std::vector<double> weights;
  weights.reserve(refs);
  for (std::size_t k = 0; k < refs; ++k) {
    weights.push_back(rng.next_double() + 0.25);
  }
  triple.program.set_weighted_sum(std::move(weights));

  triple.timesteps = rng.next_in(1, 6);
  triple.block = rng.next_in(1, triple.timesteps);
  switch (rng.next_in(0, 3)) {
    case 0:
      triple.boundary = stencil::BoundaryPolicy::kShrink;
      break;
    case 1:
      triple.boundary = stencil::BoundaryPolicy::kClamp;
      break;
    case 2:
      triple.boundary = stencil::BoundaryPolicy::kWrap;
      break;
    default:
      triple.boundary = stencil::BoundaryPolicy::kConstant;
      break;
  }
  triple.constant_value = rng.next_double();
  return triple;
}

}  // namespace nup::testing
