// Shared seeded random-stencil generators for the test suites. One recipe,
// one place: the simulator differential suite, the runtime engine suite,
// the pipeline executor suite and the vector fuzz harness all draw from
// here, so a seed names the same program everywhere and a recipe tweak
// cannot silently fork the suites.

#pragma once

#include <cstdint>
#include <vector>

#include "stencil/boundary.hpp"
#include "stencil/program.hpp"

namespace nup::testing {

/// Knobs of random_program. The defaults reproduce bit-for-bit the legacy
/// recipe previously duplicated across differential_test.cpp and
/// engine_test.cpp: Rng(seed * 2654435761 + 17), 2-7 distinct offsets in
/// [-2,2]x[-3,3], per-dimension extents next_in(5,12), even seeds
/// rectangular / odd seeds sheared.
struct StencilGenOptions {
  enum class Shape {
    kBySeed,       ///< legacy: even seed -> rect, odd seed -> sheared
    kRect,         ///< axis-aligned box
    kSheared,      ///< rows shifted by a random shear of 1-2 per outer step
    kTriangular,   ///< row length grows by 1 per outer step (ragged inner
                   ///< widths 1..extent, exercising every W remainder)
  };
  Shape shape = Shape::kBySeed;

  std::int64_t min_refs = 2;    ///< window size range (distinct offsets)
  std::int64_t max_refs = 7;
  std::int64_t min_extent = 5;  ///< per-dimension extent range (inclusive)
  std::int64_t max_extent = 12;

  /// Install a random weighted-sum kernel (weights in [0.25, 1.25)) via
  /// set_weighted_sum so the linear structure is visible to the vector
  /// path. False keeps the legacy equal-weight default kernel.
  bool random_weights = false;
};

/// Deterministic random 2-D single-input stencil for `seed`. With default
/// options this is exactly the legacy generator of the differential and
/// engine suites (same Rng stream, same names "RAND_RECT_<seed>" /
/// "RAND_SKEW_<seed>").
stencil::StencilProgram random_program(std::uint64_t seed,
                                       const StencilGenOptions& options = {});

/// Deterministic random fusible stage pair (legacy pipeline recipe:
/// Rng(seed * 2654435761 + 99)): stage 1 on [a,b]^2 with window radius 2,
/// stage 2's radius-r2 window shrinks its domain to [a+r2, b-r2]^2; both
/// stages carry random weighted-sum kernels.
std::vector<stencil::StencilProgram> random_stage_pair(std::uint64_t seed);

/// One random temporal-blocking configuration: an iterative 2-D stencil
/// over a box domain plus the (T, B, boundary) triple that sweeps it.
struct IterativeTriple {
  stencil::StencilProgram program;
  std::int64_t timesteps = 1;  ///< T in [1, 6]
  std::int64_t block = 1;      ///< B in [1, T]
  stencil::BoundaryPolicy boundary = stencil::BoundaryPolicy::kShrink;
  double constant_value = 0.0;  ///< kConstant's Dirichlet value
};

/// Deterministic random iterative triple for `seed` (Rng stream
/// seed * 2654435761 + 123): 2-6 distinct offsets in [-2,2]^2, box extents
/// 6-14 per dimension, random weighted-sum kernel, and a boundary policy
/// cycling shrink / clamp / wrap / constant. Programs are named
/// "RAND_ITER_<seed>".
IterativeTriple random_iterative_triple(std::uint64_t seed);

}  // namespace nup::testing
