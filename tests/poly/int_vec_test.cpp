#include "poly/int_vec.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::poly {
namespace {

TEST(IntVec, AddSub) {
  EXPECT_EQ(add({1, 2}, {3, -4}), (IntVec{4, -2}));
  EXPECT_EQ(sub({1, 2}, {3, -4}), (IntVec{-2, 6}));
}

TEST(IntVec, AddDimensionMismatchThrows) {
  EXPECT_THROW(add({1}, {1, 2}), Error);
  EXPECT_THROW(sub({1, 2, 3}, {1, 2}), Error);
}

TEST(IntVec, Negate) {
  EXPECT_EQ(negate({1, -2, 0}), (IntVec{-1, 2, 0}));
}

TEST(IntVec, LexCompareOrdering) {
  // Definition 2: (1,0) > (0,1) > (0,0) > (-1,0).
  EXPECT_GT(lex_compare({1, 0}, {0, 1}), 0);
  EXPECT_GT(lex_compare({0, 1}, {0, 0}), 0);
  EXPECT_GT(lex_compare({0, 0}, {-1, 0}), 0);
  EXPECT_EQ(lex_compare({2, 3}, {2, 3}), 0);
  EXPECT_LT(lex_compare({2, 3}, {2, 4}), 0);
}

TEST(IntVec, LexLess) {
  EXPECT_TRUE(lex_less({0, 9}, {1, 0}));
  EXPECT_FALSE(lex_less({1, 0}, {1, 0}));
  EXPECT_FALSE(lex_less({1, 1}, {1, 0}));
}

TEST(IntVec, LexCompareFirstDimensionDominates) {
  EXPECT_GT(lex_compare({1, -100}, {0, 100}), 0);
}

TEST(IntVec, IsZero) {
  EXPECT_TRUE(is_zero({0, 0, 0}));
  EXPECT_FALSE(is_zero({0, 1}));
  EXPECT_TRUE(is_zero({}));
}

TEST(IntVec, ToString) {
  EXPECT_EQ(to_string({1, -2}), "(1, -2)");
  EXPECT_EQ(to_string({7}), "(7)");
}

}  // namespace
}  // namespace nup::poly
