#include "poly/domain.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::poly {
namespace {

Domain triangle(std::int64_t n) {
  // 0 <= x0 <= n, 0 <= x1 <= x0.
  Polyhedron tri(2);
  tri.add(lower_bound(2, 0, 0));
  tri.add(upper_bound(2, 0, n));
  tri.add(lower_bound(2, 1, 0));
  tri.add(make_constraint({1, -1}, 0));
  return Domain(std::move(tri));
}

TEST(Domain, BoxCount) {
  EXPECT_EQ(Domain::box({0, 0}, {2, 3}).count(), 12);
  EXPECT_EQ(Domain::box({5}, {5}).count(), 1);
  EXPECT_EQ(Domain::box({0, 0, 0}, {1, 2, 3}).count(), 24);
}

TEST(Domain, TriangleCount) {
  // Rows 0..4 with 1..5 points: 15.
  EXPECT_EQ(triangle(4).count(), 15);
}

TEST(Domain, UnionCountsOverlapOnce) {
  Domain u = Domain::box({0, 0}, {3, 3});        // 16 points
  u.add_piece(Polyhedron::box({2, 2}, {5, 5}));  // 16 points, 4 overlap
  EXPECT_EQ(u.count(), 28);
}

TEST(Domain, UnionMembership) {
  Domain u = Domain::box({0, 0}, {1, 1});
  u.add_piece(Polyhedron::box({10, 10}, {11, 11}));
  EXPECT_TRUE(u.contains({0, 1}));
  EXPECT_TRUE(u.contains({11, 10}));
  EXPECT_FALSE(u.contains({5, 5}));
}

TEST(Domain, RowIntervalsMergesPieces) {
  Domain u = Domain::box({0, 0}, {0, 3});
  u.add_piece(Polyhedron::box({0, 2}, {0, 8}));
  const auto rows = u.row_intervals({0});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].lo, 0);
  EXPECT_EQ(rows[0].hi, 8);
}

TEST(Domain, RowIntervalsDisjointPieces) {
  Domain u = Domain::box({0, 0}, {0, 2});
  u.add_piece(Polyhedron::box({0, 6}, {0, 9}));
  const auto rows = u.row_intervals({0});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].lo, 6);
}

TEST(Domain, LexRankOnBox) {
  const Domain box = Domain::box({0, 0}, {3, 4});  // rows of 5
  EXPECT_EQ(box.lex_rank({0, 0}), 0);
  EXPECT_EQ(box.lex_rank({0, 3}), 3);
  EXPECT_EQ(box.lex_rank({2, 1}), 11);
  EXPECT_EQ(box.lex_rank({9, 9}), 20);   // beyond: all points
  EXPECT_EQ(box.lex_rank({-1, 0}), 0);   // before: none
}

TEST(Domain, LexRankOfNonMemberPoint) {
  const Domain box = Domain::box({0, 0}, {3, 4});
  // Point (1, 99) is past row 1: rank = 2 rows of 5.
  EXPECT_EQ(box.lex_rank({1, 99}), 10);
  EXPECT_EQ(box.lex_rank({1, -5}), 5);
}

TEST(Domain, LexRankOnTriangle) {
  const Domain tri = triangle(4);
  EXPECT_EQ(tri.lex_rank({0, 0}), 0);
  EXPECT_EQ(tri.lex_rank({2, 0}), 3);   // rows 0 (1) + 1 (2)
  EXPECT_EQ(tri.lex_rank({4, 4}), 14);
}

TEST(Domain, LexMin) {
  EXPECT_EQ(Domain::box({3, 7}, {5, 9}).lex_min().value(), (IntVec{3, 7}));
  EXPECT_FALSE(Domain().lex_min().has_value());
}

TEST(Domain, LexMinSkewed) {
  // Rows start at x1 = x0 + 1.
  Polyhedron para(2);
  para.add(lower_bound(2, 0, 2));
  para.add(upper_bound(2, 0, 5));
  para.add(make_constraint({-1, 1}, -1));  // x1 >= x0 + 1
  para.add(make_constraint({1, -1}, 4));   // x1 <= x0 + 4
  EXPECT_EQ(Domain(std::move(para)).lex_min().value(), (IntVec{2, 3}));
}

TEST(Domain, CursorVisitsAllPointsInLexOrder) {
  const Domain tri = triangle(3);
  std::vector<IntVec> visited;
  tri.for_each([&](const IntVec& p) { visited.push_back(p); });
  ASSERT_EQ(visited.size(), 10u);
  for (std::size_t i = 1; i < visited.size(); ++i) {
    EXPECT_TRUE(lex_less(visited[i - 1], visited[i]));
  }
  EXPECT_EQ(visited.front(), (IntVec{0, 0}));
  EXPECT_EQ(visited.back(), (IntVec{3, 3}));
}

TEST(Domain, CursorMatchesCountOnUnions) {
  Domain u = Domain::box({0, 0}, {4, 4});
  u.add_piece(Polyhedron::box({3, 3}, {7, 9}));
  std::int64_t visited = 0;
  IntVec prev;
  bool first = true;
  u.for_each([&](const IntVec& p) {
    if (!first) {
      EXPECT_TRUE(lex_less(prev, p));
    }
    prev = p;
    first = false;
    ++visited;
  });
  EXPECT_EQ(visited, u.count());
}

TEST(Domain, CursorOn1D) {
  const Domain line = Domain::box({-2}, {2});
  std::vector<std::int64_t> xs;
  line.for_each([&](const IntVec& p) { xs.push_back(p[0]); });
  EXPECT_EQ(xs, (std::vector<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(Domain, Cursor3D) {
  const Domain box = Domain::box({0, 0, 0}, {1, 1, 1});
  std::vector<IntVec> visited;
  box.for_each([&](const IntVec& p) { visited.push_back(p); });
  ASSERT_EQ(visited.size(), 8u);
  EXPECT_EQ(visited[0], (IntVec{0, 0, 0}));
  EXPECT_EQ(visited[1], (IntVec{0, 0, 1}));
  EXPECT_EQ(visited[2], (IntVec{0, 1, 0}));
  EXPECT_EQ(visited[7], (IntVec{1, 1, 1}));
}

TEST(Domain, TranslatedUnion) {
  Domain u = Domain::box({0, 0}, {1, 1});
  u.add_piece(Polyhedron::box({5, 5}, {6, 6}));
  const Domain moved = u.translated({10, 20});
  EXPECT_TRUE(moved.contains({10, 20}));
  EXPECT_TRUE(moved.contains({16, 26}));
  EXPECT_EQ(moved.count(), u.count());
}

TEST(Domain, AsSingleBox) {
  IntVec lo;
  IntVec hi;
  EXPECT_TRUE(Domain::box({1, 2}, {3, 4}).as_single_box(&lo, &hi));
  Domain u = Domain::box({0, 0}, {1, 1});
  u.add_piece(Polyhedron::box({0, 0}, {1, 1}));
  EXPECT_FALSE(u.as_single_box(&lo, &hi));
}

TEST(Domain, EmptyDomainBehaviour) {
  const Domain empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0);
  std::int64_t visits = 0;
  empty.for_each([&](const IntVec&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(Domain, DimOnEmptyThrows) { EXPECT_THROW(Domain().dim(), Error); }

TEST(Domain, InfeasiblePieceYieldsNoPoints) {
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 5));
  p.add(upper_bound(2, 0, 3));  // contradiction
  p.add(lower_bound(2, 1, 0));
  p.add(upper_bound(2, 1, 3));
  const Domain d(std::move(p));
  EXPECT_EQ(d.count(), 0);
  EXPECT_TRUE(d.empty());
}


TEST(Domain, LexMax) {
  EXPECT_EQ(Domain::box({3, 7}, {5, 9}).lex_max().value(), (IntVec{5, 9}));
  EXPECT_EQ(triangle(4).lex_max().value(), (IntVec{4, 4}));
  EXPECT_FALSE(Domain().lex_max().has_value());
}

TEST(Domain, LexMaxOnUnion) {
  Domain u = Domain::box({0, 0}, {2, 2});
  u.add_piece(Polyhedron::box({1, 5}, {2, 9}));
  EXPECT_EQ(u.lex_max().value(), (IntVec{2, 9}));
}

TEST(Domain, LexMinMaxAgreeWithEnumeration) {
  Domain u = Domain::box({0, 1}, {3, 4});
  u.add_piece(Polyhedron::box({2, 3}, {6, 8}));
  IntVec first;
  IntVec last;
  bool any = false;
  u.for_each([&](const IntVec& p) {
    if (!any) first = p;
    last = p;
    any = true;
  });
  ASSERT_TRUE(any);
  EXPECT_EQ(u.lex_min().value(), first);
  EXPECT_EQ(u.lex_max().value(), last);
}

}  // namespace
}  // namespace nup::poly
