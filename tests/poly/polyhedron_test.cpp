#include "poly/polyhedron.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::poly {
namespace {

TEST(Interval, EmptyAndSize) {
  EXPECT_TRUE(Interval{}.empty());
  EXPECT_EQ(Interval{}.size(), 0);
  EXPECT_EQ((Interval{2, 5}).size(), 4);
  EXPECT_TRUE((Interval{3, 2}).empty());
}

TEST(Interval, Intersect) {
  const Interval a{0, 10};
  const Interval b{5, 20};
  const Interval c = intersect(a, b);
  EXPECT_EQ(c.lo, 5);
  EXPECT_EQ(c.hi, 10);
  EXPECT_TRUE(intersect(Interval{0, 2}, Interval{5, 9}).empty());
}

TEST(Interval, MergeIntervals) {
  auto merged = merge_intervals({{5, 9}, {0, 2}, {3, 4}, {20, 22}});
  // [0,2] and [3,4] are adjacent -> coalesce; [5,9] touches [3,4]+1.
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].lo, 0);
  EXPECT_EQ(merged[0].hi, 9);
  EXPECT_EQ(merged[1].lo, 20);
}

TEST(Interval, MergeDropsEmpty) {
  auto merged = merge_intervals({{3, 1}, {0, 0}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].lo, 0);
  EXPECT_EQ(merged[0].hi, 0);
}

TEST(Polyhedron, BoxContains) {
  const Polyhedron box = Polyhedron::box({0, 0}, {3, 5});
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_TRUE(box.contains({3, 5}));
  EXPECT_FALSE(box.contains({4, 0}));
  EXPECT_FALSE(box.contains({0, -1}));
}

TEST(Polyhedron, ZeroDimensionThrows) { EXPECT_THROW(Polyhedron(0), Error); }

TEST(Polyhedron, TranslatedMembership) {
  const Polyhedron box = Polyhedron::box({0, 0}, {2, 2});
  const Polyhedron moved = box.translated({10, -1});
  EXPECT_TRUE(moved.contains({10, -1}));
  EXPECT_TRUE(moved.contains({12, 1}));
  EXPECT_FALSE(moved.contains({0, 0}));
}

TEST(Polyhedron, IntersectedIsConjunction) {
  const Polyhedron a = Polyhedron::box({0, 0}, {5, 5});
  const Polyhedron b = Polyhedron::box({3, 3}, {9, 9});
  const Polyhedron c = a.intersected(b);
  EXPECT_TRUE(c.contains({4, 4}));
  EXPECT_FALSE(c.contains({1, 1}));
  EXPECT_FALSE(c.contains({7, 7}));
}

TEST(Polyhedron, InnermostLevelBoundsExact) {
  const Polyhedron box = Polyhedron::box({0, 2}, {4, 7});
  const Interval iv = box.level_bounds({1}, 1);
  EXPECT_EQ(iv.lo, 2);
  EXPECT_EQ(iv.hi, 7);
}

TEST(Polyhedron, LevelBoundsInfeasiblePrefix) {
  const Polyhedron box = Polyhedron::box({0, 0}, {4, 4});
  EXPECT_TRUE(box.level_bounds({9}, 1).empty());
}

TEST(Polyhedron, OuterLevelBoundsViaElimination) {
  // Triangle: 0 <= x0 <= 4, 0 <= x1 <= x0.
  Polyhedron tri(2);
  tri.add(lower_bound(2, 0, 0));
  tri.add(upper_bound(2, 0, 4));
  tri.add(lower_bound(2, 1, 0));
  tri.add(make_constraint({1, -1}, 0));  // x0 - x1 >= 0
  const Interval outer = tri.level_bounds({}, 0);
  EXPECT_EQ(outer.lo, 0);
  EXPECT_EQ(outer.hi, 4);
  const Interval row2 = tri.level_bounds({2}, 1);
  EXPECT_EQ(row2.lo, 0);
  EXPECT_EQ(row2.hi, 2);
}

TEST(Polyhedron, SkewedRowBounds) {
  // Parallelogram: 0 <= x0 <= 3, x0 <= x1 <= x0 + 2.
  Polyhedron para(2);
  para.add(lower_bound(2, 0, 0));
  para.add(upper_bound(2, 0, 3));
  para.add(make_constraint({-1, 1}, 0));  // x1 >= x0
  para.add(make_constraint({1, -1}, 2));  // x1 <= x0 + 2
  const Interval row3 = para.level_bounds({3}, 1);
  EXPECT_EQ(row3.lo, 3);
  EXPECT_EQ(row3.hi, 5);
}

TEST(Polyhedron, AxisRange) {
  Polyhedron tri(2);
  tri.add(lower_bound(2, 0, 1));
  tri.add(upper_bound(2, 0, 6));
  tri.add(lower_bound(2, 1, 0));
  tri.add(make_constraint({1, -1}, 0));  // x1 <= x0
  const Interval r0 = tri.axis_range(0);
  EXPECT_EQ(r0.lo, 1);
  EXPECT_EQ(r0.hi, 6);
  const Interval r1 = tri.axis_range(1);
  EXPECT_EQ(r1.lo, 0);
  EXPECT_EQ(r1.hi, 6);
}

TEST(Polyhedron, AsBoxDetectsBoxes) {
  IntVec lo;
  IntVec hi;
  EXPECT_TRUE(Polyhedron::box({1, -2}, {5, 9}).as_box(&lo, &hi));
  EXPECT_EQ(lo, (IntVec{1, -2}));
  EXPECT_EQ(hi, (IntVec{5, 9}));
}

TEST(Polyhedron, AsBoxRejectsSkew) {
  Polyhedron p = Polyhedron::box({0, 0}, {4, 4});
  p.add(make_constraint({1, -1}, 0));
  EXPECT_FALSE(p.as_box(nullptr, nullptr));
}

TEST(Polyhedron, AsBoxRejectsUnbounded) {
  Polyhedron p(2);
  p.add(lower_bound(2, 0, 0));
  p.add(upper_bound(2, 0, 4));
  p.add(lower_bound(2, 1, 0));  // x1 unbounded above
  EXPECT_FALSE(p.as_box(nullptr, nullptr));
}

TEST(Polyhedron, ThreeDimensionalBounds) {
  const Polyhedron box = Polyhedron::box({0, 0, 0}, {2, 3, 4});
  EXPECT_EQ(box.level_bounds({}, 0).size(), 3);
  EXPECT_EQ(box.level_bounds({1}, 1).size(), 4);
  EXPECT_EQ(box.level_bounds({1, 2}, 2).size(), 5);
}

TEST(Polyhedron, ToStringMentionsConstraints) {
  const Polyhedron box = Polyhedron::box({0}, {3});
  const std::string text = box.to_string();
  EXPECT_NE(text.find(">= 0"), std::string::npos);
}

}  // namespace
}  // namespace nup::poly
