#include "poly/affine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::poly {
namespace {

TEST(AffineExpr, Evaluate) {
  const AffineExpr expr({2, -3}, 5);
  EXPECT_EQ(expr.evaluate({1, 1}), 4);
  EXPECT_EQ(expr.evaluate({0, 0}), 5);
  EXPECT_EQ(expr.evaluate({-1, 2}), -3);
}

TEST(AffineExpr, EvaluateDimMismatchThrows) {
  const AffineExpr expr({1, 1}, 0);
  EXPECT_THROW(expr.evaluate({1}), Error);
}

TEST(AffineExpr, TranslatedShiftsConstant) {
  // f(x) = x0 + 2*x1; g(x) = f(x - (1, 1)) = x0 + 2*x1 - 3.
  const AffineExpr f({1, 2}, 0);
  const AffineExpr g = f.translated({1, 1});
  EXPECT_EQ(g.constant, -3);
  EXPECT_EQ(g.evaluate({1, 1}), f.evaluate({0, 0}));
  EXPECT_EQ(g.evaluate({5, 2}), f.evaluate({4, 1}));
}

TEST(AffineExpr, ToStringReadable) {
  EXPECT_EQ(AffineExpr({1, 0}, -1).to_string(), "x0 - 1");
  EXPECT_EQ(AffineExpr({0, 0}, 7).to_string(), "7");
  EXPECT_EQ(AffineExpr({-2, 1}, 0).to_string(), "-2*x0 + x1");
}

TEST(Constraint, Satisfied) {
  // x0 >= 3.
  const Constraint c = lower_bound(2, 0, 3);
  EXPECT_TRUE(c.satisfied({3, 0}));
  EXPECT_TRUE(c.satisfied({10, -5}));
  EXPECT_FALSE(c.satisfied({2, 100}));
}

TEST(Constraint, UpperBound) {
  // x1 <= 7.
  const Constraint c = upper_bound(2, 1, 7);
  EXPECT_TRUE(c.satisfied({0, 7}));
  EXPECT_FALSE(c.satisfied({0, 8}));
}

TEST(Constraint, MakeConstraintGeneral) {
  // x0 - x1 >= 0 (triangle boundary).
  const Constraint c = make_constraint({1, -1}, 0);
  EXPECT_TRUE(c.satisfied({4, 4}));
  EXPECT_TRUE(c.satisfied({5, 4}));
  EXPECT_FALSE(c.satisfied({3, 4}));
}

}  // namespace
}  // namespace nup::poly
