#include "poly/transform.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace nup::poly {
namespace {

TEST(Transform, IdentityMapsPointsToThemselves) {
  const UnimodularTransform t = identity_transform(3);
  EXPECT_EQ(t.apply({1, -2, 3}), (IntVec{1, -2, 3}));
  EXPECT_EQ(determinant(t), 1);
}

TEST(Transform, SkewAddsScaledCoordinate) {
  const UnimodularTransform t = skew(2, 0, 1, 1);  // j' = j + i
  EXPECT_EQ(t.apply({3, 4}), (IntVec{3, 7}));
  EXPECT_EQ(determinant(t), 1);
}

TEST(Transform, SkewRejectsSameAxis) { EXPECT_THROW(skew(2, 1, 1, 1), Error); }

TEST(Transform, InterchangeSwaps) {
  const UnimodularTransform t = interchange(3, 0, 2);
  EXPECT_EQ(t.apply({1, 2, 3}), (IntVec{3, 2, 1}));
  EXPECT_EQ(determinant(t), -1);
}

TEST(Transform, ReversalNegates) {
  const UnimodularTransform t = reversal(2, 1);
  EXPECT_EQ(t.apply({5, 7}), (IntVec{5, -7}));
  EXPECT_EQ(determinant(t), -1);
}

TEST(Transform, ComposeAppliesRightFirst) {
  const UnimodularTransform s = skew(2, 0, 1, 2);
  const UnimodularTransform r = interchange(2, 0, 1);
  const UnimodularTransform sr = compose(s, r);
  const IntVec p{3, 5};
  EXPECT_EQ(sr.apply(p), s.apply(r.apply(p)));
}

TEST(Transform, InverseRoundTrips) {
  UnimodularTransform t = compose(skew(3, 0, 2, -2), interchange(3, 1, 2));
  t.shift = {4, -1, 7};
  const UnimodularTransform inv = inverse(t);
  for (std::int64_t a = -2; a <= 2; ++a) {
    for (std::int64_t b = -2; b <= 2; ++b) {
      const IntVec p{a, b, a - b};
      EXPECT_EQ(inv.apply(t.apply(p)), p);
      EXPECT_EQ(t.apply(inv.apply(p)), p);
    }
  }
}

TEST(Transform, InverseRejectsNonUnimodular) {
  UnimodularTransform t = identity_transform(2);
  t.rows[0][0] = 2;
  EXPECT_THROW(inverse(t), Error);
}

TEST(Transform, DomainImageIsExactPointSet) {
  const Domain box = Domain::box({0, 0}, {3, 4});
  UnimodularTransform t = skew(2, 0, 1, 1);
  t.shift = {10, -3};
  const Domain image = apply(t, box);
  EXPECT_EQ(image.count(), box.count());
  std::set<IntVec> expected;
  box.for_each([&](const IntVec& p) { expected.insert(t.apply(p)); });
  std::set<IntVec> actual;
  image.for_each([&](const IntVec& p) { actual.insert(p); });
  EXPECT_EQ(actual, expected);
}

TEST(Transform, SkewingCanRectangularizeAParallelogram) {
  // A sheared domain: 0 <= i <= 4, i <= j <= i + 3. Applying j' = j - i
  // turns it into a box.
  Polyhedron para(2);
  para.add(lower_bound(2, 0, 0));
  para.add(upper_bound(2, 0, 4));
  para.add(make_constraint({-1, 1}, 0));  // j >= i
  para.add(make_constraint({1, -1}, 3));  // j <= i + 3
  const Domain sheared(para);
  const UnimodularTransform unshear = skew(2, 0, 1, -1);
  const Domain image = apply(unshear, sheared);
  IntVec lo;
  IntVec hi;
  // The image is the box [0,4] x [0,3] even if expressed with skewed
  // constraints; verify by membership and count.
  EXPECT_EQ(image.count(), 20);
  EXPECT_TRUE(image.contains({0, 0}));
  EXPECT_TRUE(image.contains({4, 3}));
  EXPECT_FALSE(image.contains({4, 4}));
  (void)lo;
  (void)hi;
}

TEST(Transform, ApplyPreservesLexOrderForIdentityShift) {
  // Pure translations keep lexicographic order.
  const Domain box = Domain::box({1, 1}, {3, 3});
  UnimodularTransform t = identity_transform(2);
  t.shift = {5, 5};
  const Domain image = apply(t, box);
  std::vector<IntVec> order;
  image.for_each([&](const IntVec& p) { order.push_back(p); });
  EXPECT_EQ(order.front(), (IntVec{6, 6}));
  EXPECT_EQ(order.back(), (IntVec{8, 8}));
}

}  // namespace
}  // namespace nup::poly
