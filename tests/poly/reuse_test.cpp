#include "poly/reuse.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::poly {
namespace {

TEST(RankOracle, MatchesDomainLexRankOnBox) {
  const Domain box = Domain::box({0, 0}, {7, 9});
  const RankOracle oracle(box);
  EXPECT_EQ(oracle.total(), 80);
  box.for_each([&](const IntVec& p) {
    EXPECT_EQ(oracle.rank(p), box.lex_rank(p)) << to_string(p);
  });
}

TEST(RankOracle, MatchesDomainLexRankOnUnion) {
  Domain u = Domain::box({0, 1}, {3, 4});
  u.add_piece(Polyhedron::box({2, 3}, {6, 8}));
  const RankOracle oracle(u);
  EXPECT_EQ(oracle.total(), u.count());
  u.for_each([&](const IntVec& p) {
    EXPECT_EQ(oracle.rank(p), u.lex_rank(p)) << to_string(p);
  });
}

TEST(RankOracle, RankInclusiveCountsMembership) {
  const Domain box = Domain::box({0, 0}, {3, 3});
  const RankOracle oracle(box);
  EXPECT_EQ(oracle.rank_inclusive({0, 0}), 1);
  EXPECT_EQ(oracle.rank_inclusive({0, -1}), 0);  // not a member
  EXPECT_EQ(oracle.rank_inclusive({3, 3}), 16);
}

TEST(RankOracle, PointsPastTheEnd) {
  const Domain box = Domain::box({0, 0}, {2, 2});
  const RankOracle oracle(box);
  EXPECT_EQ(oracle.rank({5, 0}), 9);
  EXPECT_EQ(oracle.rank_inclusive({5, 0}), 9);
}

TEST(BoxLinearizedDistance, DenoiseExample) {
  // Paper Section 2.3: DENOISE on A[0..767][0..1023], earliest reference
  // A[i+1][j], latest A[i-1][j]: r = (2, 0) -> 2048.
  const IntVec lo{0, 0};
  const IntVec hi{767, 1023};
  EXPECT_EQ(box_linearized_distance(lo, hi, {2, 0}), 2048);
  // Adjacent pair A[i+1][j] -> A[i][j+1]: r = (1, -1) -> 1023 (Table 2).
  EXPECT_EQ(box_linearized_distance(lo, hi, {1, -1}), 1023);
  // A[i][j+1] -> A[i][j]: r = (0, 1) -> 1.
  EXPECT_EQ(box_linearized_distance(lo, hi, {0, 1}), 1);
}

TEST(BoxLinearizedDistance, ThreeDimensional) {
  const IntVec lo{0, 0, 0};
  const IntVec hi{95, 127, 127};
  EXPECT_EQ(box_linearized_distance(lo, hi, {1, 0, 0}), 128 * 128);
  EXPECT_EQ(box_linearized_distance(lo, hi, {0, 1, 0}), 128);
  EXPECT_EQ(box_linearized_distance(lo, hi, {1, -1, 0}), 128 * 127);
}

TEST(BoxLinearizedDistance, DimensionMismatchThrows) {
  EXPECT_THROW(box_linearized_distance({0, 0}, {1, 1}, {1}), Error);
}

TEST(ReuseDistanceAt, CountsBetweenPoints) {
  // 4x4 box; offsets f_from = (1,0), f_to = (0,1); at iteration (1,1) the
  // window spans grid points (1,2) .. (2,1): the rest of row 1 (cols 2,3)
  // plus (2,0) and (2,1) = 4 elements = linearized distance of (1,-1).
  const Domain data = Domain::box({0, 0}, {3, 3});
  EXPECT_EQ(reuse_distance_at(data, {1, 1}, {1, 0}, {0, 1}), 3);
  EXPECT_EQ(box_linearized_distance({0, 0}, {3, 3}, {1, -1}), 3);
}

TEST(MaxReuseDistance, BoxFastPathConstant) {
  const Domain iter = Domain::box({1, 1}, {6, 6});
  const Domain data = Domain::box({0, 0}, {7, 7});
  const ReuseResult r = max_reuse_distance(iter, data, {1, 0}, {-1, 0});
  EXPECT_TRUE(r.used_box_fast_path);
  EXPECT_EQ(r.max_distance, 16);
  EXPECT_EQ(r.min_distance, 16);
}

TEST(MaxReuseDistance, ExactPathAgreesWithBoxOnRectangles) {
  const Domain iter = Domain::box({1, 1}, {6, 6});
  // Same rectangle but written as a union of two pieces so the fast path
  // is not taken.
  Domain data = Domain::box({0, 0}, {7, 3});
  data.add_piece(Polyhedron::box({0, 4}, {7, 7}));
  const ReuseResult exact = max_reuse_distance(iter, data, {1, 0}, {-1, 0});
  EXPECT_FALSE(exact.used_box_fast_path);
  EXPECT_EQ(exact.max_distance, 16);
}

TEST(MaxReuseDistance, VariesOnTriangularGrid) {
  // Triangular data domain (rows of growing length): the reuse distance of
  // r = (1, 0) at iteration (i, j) is i + 1, so it changes as execution
  // advances -- the Fig 9 phenomenon.
  Polyhedron tri(2);
  tri.add(lower_bound(2, 0, 0));
  tri.add(upper_bound(2, 0, 9));
  tri.add(lower_bound(2, 1, 0));
  tri.add(make_constraint({1, -1}, 0));  // x1 <= x0
  const Domain data(tri);
  Polyhedron itri(2);
  itri.add(lower_bound(2, 0, 1));
  itri.add(upper_bound(2, 0, 8));
  itri.add(lower_bound(2, 1, 0));
  itri.add(make_constraint({1, -1}, -1));  // x1 <= x0 - 1
  const Domain iter(itri);
  const ReuseResult r = max_reuse_distance(iter, data, {1, 0}, {0, 0});
  EXPECT_FALSE(r.used_box_fast_path);
  EXPECT_GT(r.max_distance, r.min_distance);
  EXPECT_EQ(r.max_distance, 9);  // deepest row: i = 8 -> distance 9
  EXPECT_EQ(r.min_distance, 2);  // shallowest: i = 1 -> distance 2
  EXPECT_TRUE(iter.contains(r.argmax_iteration));
}

TEST(MaxReuseDistance, LinearityProperty3) {
  // r(A0 -> A2) == r(A0 -> A1) + r(A1 -> A2) on any domain.
  const Domain iter = Domain::box({1, 1}, {10, 14});
  const Domain data = Domain::box({0, 0}, {11, 15});
  const IntVec f0{1, 0};
  const IntVec f1{0, 1};
  const IntVec f2{-1, 0};
  const std::int64_t d01 =
      max_reuse_distance(iter, data, f0, f1).max_distance;
  const std::int64_t d12 =
      max_reuse_distance(iter, data, f1, f2).max_distance;
  const std::int64_t d02 =
      max_reuse_distance(iter, data, f0, f2).max_distance;
  EXPECT_EQ(d02, d01 + d12);
}

TEST(MaxReuseDistance, ZeroForIdenticalOffsets) {
  const Domain iter = Domain::box({1, 1}, {4, 4});
  const Domain data = Domain::box({0, 0}, {5, 5});
  EXPECT_EQ(max_reuse_distance(iter, data, {0, 1}, {0, 1}).max_distance, 0);
}

TEST(MaxReuseDistance, ExactLimitEnforced) {
  Domain data = Domain::box({0, 0}, {99, 99});
  data.add_piece(Polyhedron::box({0, 0}, {0, 0}));  // force non-box path
  const Domain iter = Domain::box({1, 1}, {98, 98});
  ReuseOptions options;
  options.exact_iteration_limit = 10;
  EXPECT_THROW(max_reuse_distance(iter, data, {1, 0}, {0, 0}, options),
               Error);
}

TEST(MaxReuseDistance, EmptyIterationThrows) {
  Domain data = Domain::box({0, 0}, {3, 3});
  data.add_piece(Polyhedron::box({0, 0}, {1, 1}));
  Polyhedron infeasible(2);
  infeasible.add(lower_bound(2, 0, 5));
  infeasible.add(upper_bound(2, 0, 1));
  infeasible.add(lower_bound(2, 1, 0));
  infeasible.add(upper_bound(2, 1, 1));
  EXPECT_THROW(
      max_reuse_distance(Domain(infeasible), data, {1, 0}, {0, 0}),
      Error);
}

}  // namespace
}  // namespace nup::poly
