// Frame engine end-to-end: multi-threaded tiled execution must be
// bit-identical to stencil::run_golden on the gallery kernels and on a
// hundred seeded random stencils (rectangular and sheared), and the
// engine's control surface -- queue backpressure, cancellation of
// in-flight frames, graceful shutdown with queued work -- must be
// deterministic and free of hangs.

#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fast.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"
#include "testing/stencil_gen.hpp"

namespace nup::runtime {
namespace {

using std::chrono::milliseconds;

// Random programs come from the shared generator (legacy recipe: 2-7
// reference windows over small rectangular or sheared domains).
using ::nup::testing::random_program;

// A program whose kernel sleeps: frames take real wall time, which makes
// backpressure, cancellation and shutdown timing deterministic to test.
// The sleep does not change the value, so golden comparison still holds.
stencil::StencilProgram slow_program(std::int64_t rows, std::int64_t cols,
                                     milliseconds per_fire) {
  stencil::StencilProgram p("SLOW",
                            poly::Domain::box({1, 1}, {rows - 2, cols - 2}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel([per_fire](const std::vector<double>& v) {
    std::this_thread::sleep_for(per_fire);
    return std::accumulate(v.begin(), v.end(), 0.0) / 5.0;
  });
  return p;
}

void expect_frame_matches_golden(const stencil::StencilProgram& p,
                                 const FrameResult& result) {
  ASSERT_TRUE(result.ok()) << p.name() << ": " << result.error;
  const stencil::GoldenRun golden = stencil::run_golden(p, result.seed);
  ASSERT_EQ(result.outputs.size(), golden.outputs.size()) << p.name();
  EXPECT_EQ(result.outputs, golden.outputs)
      << p.name() << " seed " << result.seed;
}

// ---- bit-identical frames ---------------------------------------------

TEST(FrameEngine, GalleryFramesBitIdenticalToGolden) {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(24, 32),  stencil::rician_2d(24, 32),
      stencil::sobel_2d(24, 32),    stencil::bicubic_2d(12, 48),
      stencil::denoise_3d(8, 10, 12),
      stencil::segmentation_3d(8, 10, 12)};

  EngineOptions options;
  options.threads = 4;
  options.tile_shape = {};  // automatic shape
  FrameEngine engine(options);

  std::vector<std::pair<std::size_t, FrameHandle>> handles;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    for (const std::uint64_t seed : {3ull, 1717ull}) {
      handles.emplace_back(i, engine.submit(programs[i], seed));
    }
  }
  for (auto& [i, handle] : handles) {
    expect_frame_matches_golden(programs[i], handle.wait());
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.frames_submitted, 12);
  EXPECT_EQ(stats.frames_completed, 12);
  EXPECT_EQ(stats.frames_cancelled, 0);
  EXPECT_EQ(stats.frames_failed, 0);
  // Second frame of each program rides entirely on cached designs.
  EXPECT_GE(stats.cache.hits, stats.cache.misses);
}

TEST(FrameEngine, HundredRandomStencilsMatchGolden) {
  EngineOptions options;
  options.threads = 4;
  options.tile_shape = {4, 6};  // force real tiling on the tiny domains
  FrameEngine engine(options);

  // Submit in waves so at most a few distinct programs are in flight.
  constexpr std::uint64_t kSeeds = 100;
  constexpr std::uint64_t kWave = 10;
  for (std::uint64_t base = 0; base < kSeeds; base += kWave) {
    std::vector<stencil::StencilProgram> programs;
    std::vector<FrameHandle> handles;
    for (std::uint64_t s = base; s < base + kWave; ++s) {
      programs.push_back(random_program(s));
    }
    for (std::uint64_t s = 0; s < kWave; ++s) {
      handles.push_back(engine.submit(programs[s], /*seed=*/base + s));
    }
    for (std::uint64_t s = 0; s < kWave; ++s) {
      expect_frame_matches_golden(programs[s], handles[s].wait());
    }
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.frames_completed, static_cast<std::int64_t>(kSeeds));
  EXPECT_EQ(stats.frames_failed, 0);
}

TEST(FrameEngine, RepeatFramesServeFromDesignCache) {
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {8, 0};
  FrameEngine engine(options);
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);

  const auto plan = engine.plan_for(p);
  const std::int64_t tiles = static_cast<std::int64_t>(plan->tiles.size());
  ASSERT_GT(tiles, 1);

  constexpr int kFrames = 5;
  std::vector<FrameHandle> handles;
  for (int f = 0; f < kFrames; ++f) {
    handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
  }
  for (FrameHandle& handle : handles) {
    EXPECT_TRUE(handle.wait().ok()) << handle.wait().error;
  }

  const EngineStats stats = engine.stats();
  // plan_for pre-compiled every tile design; every executed tile since then
  // is a cache hit.
  EXPECT_LE(stats.cache.misses, tiles);
  EXPECT_GE(stats.cache.hits, tiles * (kFrames - 1));
  EXPECT_EQ(stats.tiles_executed, tiles * kFrames);
}

TEST(FrameEngine, SubmitByPlanMatchesSubmitByProgram) {
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {4, 6};
  FrameEngine engine(options);
  const stencil::StencilProgram p = random_program(12);

  // The re-arm path: submit over the registered plan, no canonicalization
  // or plan lookup, bit-identical to the program path.
  const std::shared_ptr<const TilePlan> plan = engine.plan_for(p);
  FrameHandle program_handle = engine.submit(p, 12);
  FrameHandle plan_handle = engine.submit(plan, 12);
  const FrameResult& by_program = program_handle.wait();
  const FrameResult& by_plan = plan_handle.wait();
  expect_frame_matches_golden(p, by_plan);
  EXPECT_EQ(by_plan.outputs, by_program.outputs);

  // The pinned-designs fast path on top: workers take each tile's design
  // straight from the vector, so the frame performs no cache lookups --
  // the hit counter does not move.
  auto designs = std::make_shared<
      std::vector<std::shared_ptr<const CachedDesign>>>();
  for (const Tile& tile : plan->tiles) {
    designs->push_back(engine.cache().pin(*tile.program, options.build));
  }
  const std::int64_t hits_before = engine.stats().cache.hits;
  SubmitOptions so;
  so.designs = designs;
  FrameHandle fast_handle = engine.submit(plan, 12, std::move(so));
  const FrameResult& fast = fast_handle.wait();
  expect_frame_matches_golden(p, fast);
  EXPECT_EQ(fast.outputs, by_program.outputs);
  EXPECT_EQ(engine.stats().cache.hits, hits_before)
      << "designs fast path still performed cache lookups";

  for (const Tile& tile : plan->tiles) {
    engine.cache().unpin(*tile.program, options.build);
  }
  EXPECT_EQ(engine.stats().cache.pinned, 0u);
}

// ---- observability ------------------------------------------------------

TEST(FrameEngine, MetricsRegistryObservesServeRun) {
  obs::Registry registry;
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {8, 0};
  options.metrics = &registry;
  FrameEngine engine(options);
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);

  constexpr int kFrames = 3;
  std::vector<FrameHandle> handles;
  for (int f = 0; f < kFrames; ++f) {
    handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
  }
  for (FrameHandle& handle : handles) {
    ASSERT_TRUE(handle.wait().ok()) << handle.wait().error;
  }

  const EngineStats stats = engine.stats();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("engine.frames_submitted"), kFrames);
  EXPECT_EQ(snap.value_of("engine.frames_completed"), kFrames);
  EXPECT_EQ(snap.value_of("engine.tiles_executed"), stats.tiles_executed);
  EXPECT_EQ(snap.value_of("cache.hits"), stats.cache.hits);
  EXPECT_EQ(snap.value_of("cache.misses"), stats.cache.misses);
  EXPECT_EQ(snap.value_of("fifo.depth_violations", 0), 0);
  EXPECT_EQ(registry.histogram("engine.tile_latency_us").snapshot().count,
            stats.tiles_executed);
  EXPECT_EQ(
      registry.histogram("engine.backpressure_wait_us").snapshot().count,
      stats.tiles_executed);

  // Every observed high-water mark pairs with its designed depth and never
  // exceeds it (the live form of the paper's Eq. 2 sizing claim).
  int high_water_gauges = 0;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name.rfind("fifo.high_water.", 0) != 0) continue;
    ++high_water_gauges;
    const std::string depth_name =
        "fifo.depth." + s.name.substr(std::string("fifo.high_water.").size());
    const std::int64_t depth = snap.value_of(depth_name, -1);
    ASSERT_GE(depth, 0) << s.name << " has no paired " << depth_name;
    EXPECT_LE(s.value, depth) << s.name;
  }
  EXPECT_GT(high_water_gauges, 0);

  // Per-worker utilization: tiles attributed to workers sum to the total.
  std::int64_t worker_tiles = 0;
  for (std::size_t w = 0; w < options.threads; ++w) {
    worker_tiles += snap.value_of(
        "engine.worker." + std::to_string(w) + ".tiles", 0);
  }
  EXPECT_EQ(worker_tiles, stats.tiles_executed);
}

TEST(FrameEngine, TraceAccountsForEveryTileOfACancelledFrame) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  FrameResult result;
  {
    EngineOptions options;
    options.threads = 1;
    options.tile_shape = {1, 0};  // many tiles per frame
    FrameEngine engine(options);
    const stencil::StencilProgram p = slow_program(12, 10, milliseconds(1));
    FrameHandle handle = engine.submit(p, 7);
    std::this_thread::sleep_for(milliseconds(5));
    handle.cancel();
    result = handle.wait();
    engine.shutdown(FrameEngine::Drain::kDrainAll);
  }
  tracer.set_enabled(false);

  ASSERT_TRUE(result.cancelled);
  const std::string json = tracer.to_chrome_json();
  const auto count_of = [&json](const std::string& needle) {
    std::int64_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  // One complete span per executed tile, one instant per skipped tile:
  // cancellation leaves no tile unaccounted and no span dangling.
  EXPECT_EQ(count_of("\"name\":\"tile\""), result.tiles_executed) << json;
  EXPECT_EQ(count_of("\"name\":\"tile.skipped\""), result.tiles_skipped);
  EXPECT_EQ(count_of("\"name\":\"frame.cancelled\""), 1);
  tracer.clear();
}

// Post-mortem bundles: the flight recorder must leave a bundle naming the
// frame, stage and tile whenever a frame dies -- cancellation and deadlock
// are the two lifecycle deaths exercised end to end here.

std::string find_bundle(const std::string& dir, const std::string& prefix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return "";
  std::string found;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind(prefix, 0) == 0) {
      found = dir + "/" + name;
      break;
    }
  }
  ::closedir(d);
  return found;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FrameEngine, CancelledFrameLeavesAPostmortemBundle) {
  obs::Journal journal;
  const std::string dir = ::testing::TempDir() + "nup_engine_pm_cancel";
  journal.set_postmortem_dir(dir);
  obs::Registry registry;

  EngineOptions options;
  options.threads = 1;
  options.tile_shape = {0, 0};  // one tile: cancellation is all-or-none
  options.metrics = &registry;
  options.journal = &journal;
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(10, 12, milliseconds(1));

  const std::uint64_t id = obs::next_frame_id();
  SubmitOptions so;
  so.frame_id = id;
  FrameHandle running = engine.submit(p, 1);
  FrameHandle queued = engine.submit(p, 2, std::move(so));
  queued.cancel();  // the single worker is still busy with frame 1
  running.wait();
  ASSERT_TRUE(queued.wait().cancelled);

  const std::string path = find_bundle(dir, "postmortem-frame_cancelled-");
  ASSERT_FALSE(path.empty()) << "no cancellation bundle in " << dir;
  const std::string bundle = slurp(path);
  EXPECT_NE(bundle.find("\"reason\": \"frame_cancelled\""),
            std::string::npos)
      << bundle;
  EXPECT_NE(bundle.find("\"frame\": " + std::to_string(id)),
            std::string::npos);
  EXPECT_NE(bundle.find("cancelled after 0 of 1 tiles"), std::string::npos);
  // The event log survives into the bundle: admission, the skipped tile,
  // the cancellation, and the metrics snapshot at death.
  EXPECT_NE(bundle.find("\"frame.admitted\""), std::string::npos);
  EXPECT_NE(bundle.find("\"tile.skipped\""), std::string::npos);
  EXPECT_NE(bundle.find("\"frame.cancelled\""), std::string::npos);
  EXPECT_NE(bundle.find("engine.frames_cancelled"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FrameEngine, DeadlockedFrameLeavesABundleNamingTheDesign) {
  obs::Journal journal;
  const std::string dir = ::testing::TempDir() + "nup_engine_pm_deadlock";
  journal.set_postmortem_dir(dir);
  obs::Registry registry;

  EngineOptions options;
  options.threads = 1;
  options.tile_shape = {0, 0};  // one tile covering the whole domain
  options.metrics = &registry;
  options.journal = &journal;
  options.sim.stall_limit = 3000;
  options.sim.validate = false;  // report the wedge instead of throwing
  FrameEngine engine(options);

  // An Eq. 2 violation that wedges mid-run (see fast_deadlock_test):
  // FIFO 3 of denoise needs depth 23; starved to 1 the chain stalls out.
  const stencil::StencilProgram p = stencil::denoise_2d(20, 24);
  const std::shared_ptr<const TilePlan> plan = engine.plan_for(p);
  ASSERT_EQ(plan->tiles.size(), 1u);
  const stencil::StencilProgram& tp = *plan->tiles[0].program;
  auto doctored = std::make_shared<CachedDesign>();
  doctored->design = arch::build_design(tp, options.build);
  doctored->design.systems[0].fifos[3].depth = 1;
  doctored->plan = sim::compile_fast_plan(tp, doctored->design);

  const std::uint64_t id = obs::next_frame_id();
  SubmitOptions so;
  so.frame_id = id;
  auto designs = std::make_shared<
      std::vector<std::shared_ptr<const CachedDesign>>>();
  designs->push_back(doctored);
  so.designs = designs;
  FrameHandle handle = engine.submit(plan, 5, std::move(so));
  const FrameResult& result = handle.wait();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("deadlocked"), std::string::npos)
      << result.error;

  const std::string path = find_bundle(dir, "postmortem-deadlock-");
  ASSERT_FALSE(path.empty()) << "no deadlock bundle in " << dir;
  const std::string bundle = slurp(path);
  EXPECT_NE(bundle.find("\"reason\": \"deadlock\""), std::string::npos)
      << bundle;
  EXPECT_NE(bundle.find("\"frame\": " + std::to_string(id)),
            std::string::npos);
  EXPECT_NE(bundle.find("\"tile\": 0"), std::string::npos);
  // The offending design rides along (describe() of the doctored
  // microarchitecture) plus the wedge diagnostic and the verdict event.
  EXPECT_NE(bundle.find("accelerator '"), std::string::npos);
  EXPECT_NE(bundle.find("\"deadlock\""), std::string::npos);
  EXPECT_NE(bundle.find("engine.frames_failed"), std::string::npos);
  std::remove(path.c_str());
}

// ---- robustness: backpressure, cancellation, shutdown ------------------

TEST(FrameEngine, BackpressureBoundsQueueDepth) {
  EngineOptions options;
  options.threads = 1;
  options.queue_capacity = 2;
  options.tile_shape = {2, 0};  // several tiles per frame
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(8, 10, milliseconds(1));

  std::vector<FrameHandle> handles;
  for (int f = 0; f < 3; ++f) {
    // With a single slow worker, these submits block on the full queue.
    handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
  }
  for (FrameHandle& handle : handles) {
    expect_frame_matches_golden(p, handle.wait());
  }
  EXPECT_LE(engine.stats().max_queue_depth, options.queue_capacity);
  EXPECT_GT(engine.stats().max_queue_depth, 0u);
}

TEST(FrameEngine, CancelSkipsQueuedFrame) {
  EngineOptions options;
  options.threads = 1;
  options.queue_capacity = 64;
  options.tile_shape = {};  // one tile per frame: cancellation is all-or-none
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(10, 12, milliseconds(1));

  FrameHandle running = engine.submit(p, 1);
  FrameHandle queued = engine.submit(p, 2);
  queued.cancel();  // the single worker is still busy with frame 1

  expect_frame_matches_golden(p, running.wait());
  const FrameResult& second = queued.wait();
  EXPECT_TRUE(second.cancelled);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.tiles_executed, 0);
  EXPECT_EQ(second.tiles_skipped, second.tiles_total);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.frames_completed, 1);
  EXPECT_EQ(stats.frames_cancelled, 1);
}

TEST(FrameEngine, CancelMidFrameSkipsRemainingTiles) {
  EngineOptions options;
  options.threads = 1;
  options.tile_shape = {1, 0};  // one row per tile: many tiles per frame
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(12, 10, milliseconds(1));

  FrameHandle handle = engine.submit(p, 9);
  std::this_thread::sleep_for(milliseconds(5));  // let a few tiles run
  handle.cancel();
  const FrameResult& result = handle.wait();

  EXPECT_TRUE(result.cancelled);
  EXPECT_GT(result.tiles_total, 1);
  EXPECT_EQ(result.tiles_executed + result.tiles_skipped,
            result.tiles_total);
}

TEST(FrameEngine, ShutdownDrainAllCompletesQueuedWork) {
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {3, 0};
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(10, 12, milliseconds(1));

  std::vector<FrameHandle> handles;
  for (int f = 0; f < 4; ++f) {
    handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
  }
  engine.shutdown(FrameEngine::Drain::kDrainAll);

  for (FrameHandle& handle : handles) {
    EXPECT_TRUE(handle.done());
    expect_frame_matches_golden(p, handle.wait());
  }
  EXPECT_THROW(engine.submit(p, 99), Error);
}

TEST(FrameEngine, ShutdownCancelPendingResolvesEverything) {
  EngineOptions options;
  options.threads = 1;
  options.tile_shape = {2, 0};
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(10, 12, milliseconds(1));

  std::vector<FrameHandle> handles;
  for (int f = 0; f < 4; ++f) {
    handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
  }
  engine.shutdown(FrameEngine::Drain::kCancelPending);

  // Every handle resolves -- no hangs -- as either a complete frame or a
  // cancelled one; nothing is left half-reported.
  int cancelled = 0;
  for (FrameHandle& handle : handles) {
    EXPECT_TRUE(handle.done());
    const FrameResult& result = handle.wait();
    if (result.cancelled) {
      ++cancelled;
      EXPECT_EQ(result.tiles_executed + result.tiles_skipped,
                result.tiles_total);
    } else {
      expect_frame_matches_golden(p, result);
    }
  }
  EXPECT_GE(cancelled, 1);  // the single slow worker cannot finish 4 frames
  EXPECT_THROW(engine.submit(p, 99), Error);
}

TEST(FrameEngine, DestructorResolvesOutstandingHandles) {
  const stencil::StencilProgram p = slow_program(10, 12, milliseconds(1));
  std::vector<FrameHandle> handles;
  {
    EngineOptions options;
    options.threads = 1;
    options.tile_shape = {2, 0};
    FrameEngine engine(options);
    for (int f = 0; f < 3; ++f) {
      handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
    }
    // Engine destroyed here with work still queued: ~FrameEngine performs
    // shutdown(kCancelPending).
  }
  for (FrameHandle& handle : handles) {
    ASSERT_TRUE(handle.valid());
    EXPECT_TRUE(handle.done());
    const FrameResult& result = handle.wait();
    EXPECT_TRUE(result.cancelled || result.ok()) << result.error;
  }
}

TEST(FrameEngine, OnFrameHookFiresOncePerResolution) {
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {8, 0};
  FrameEngine engine(options);
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);

  // The hook is the serving layer's completion path: exactly one call
  // per frame, from the resolving worker, carrying the final result.
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::vector<double>>> observed;
  constexpr int kFrames = 3;
  std::vector<FrameHandle> handles;
  for (int f = 0; f < kFrames; ++f) {
    SubmitOptions so;
    so.on_frame = [&mu, &observed](const FrameResult& result) {
      std::lock_guard<std::mutex> lock(mu);
      observed.emplace_back(result.seed, result.outputs);
    };
    handles.push_back(
        engine.submit(p, static_cast<std::uint64_t>(f), std::move(so)));
  }
  for (int f = 0; f < kFrames; ++f) {
    expect_frame_matches_golden(p, handles[f].wait());
  }
  // The hook fires on the worker thread after frame waiters are released,
  // so wait() alone does not order it; joining the workers does.
  engine.shutdown(FrameEngine::Drain::kDrainAll);

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(observed.size(), static_cast<std::size_t>(kFrames));
  for (const auto& [seed, outputs] : observed) {
    EXPECT_EQ(outputs, stencil::run_golden(p, seed).outputs) << seed;
  }
}

TEST(FrameEngine, OnFrameHookFiresForCancelledFrames) {
  EngineOptions options;
  options.threads = 1;
  options.tile_shape = {};  // one tile: cancellation is all-or-none
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(10, 12, milliseconds(1));

  std::atomic<int> calls{0};
  std::atomic<bool> saw_cancelled{false};
  SubmitOptions so;
  so.on_frame = [&calls, &saw_cancelled](const FrameResult& result) {
    ++calls;
    saw_cancelled = result.cancelled;
  };
  FrameHandle running = engine.submit(p, 1);
  FrameHandle queued = engine.submit(p, 2, std::move(so));
  queued.cancel();  // the single worker is still busy with frame 1
  running.wait();
  ASSERT_TRUE(queued.wait().cancelled);
  // A cancelled frame resolves through the same hook: the serving layer
  // frees its window slot no matter how the frame died.
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(saw_cancelled.load());
}

TEST(FrameEngine, WaitForTimesOutWhileBusyThenResolves) {
  EngineOptions options;
  options.threads = 1;
  options.tile_shape = {};
  FrameEngine engine(options);
  const stencil::StencilProgram p = slow_program(12, 12, milliseconds(2));

  FrameHandle handle = engine.submit(p, 5);
  // 100 fires x 2ms: certainly not done within 1ms.
  EXPECT_FALSE(handle.wait_for(milliseconds(1)));
  expect_frame_matches_golden(p, handle.wait());
  EXPECT_TRUE(handle.wait_for(milliseconds(0)));
}

}  // namespace
}  // namespace nup::runtime
