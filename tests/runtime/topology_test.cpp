// Topology discovery and tile placement: cpulist parsing, the
// NUP_FAKE_TOPOLOGY override (how CI simulates multi-node hosts), and the
// placement cost model's contract -- contiguous lex runs under kAuto,
// round-robin under kInterleave, everything on node 0 otherwise.

#include "runtime/placement.hpp"
#include "runtime/topology.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <set>

#include "runtime/tiler.hpp"
#include "stencil/gallery.hpp"

namespace nup::runtime {
namespace {

// Scoped NUP_FAKE_TOPOLOGY: discover() reads the env at call time, so the
// guard makes a test's fake layout invisible to every other test.
struct FakeTopo {
  explicit FakeTopo(const char* n) { setenv("NUP_FAKE_TOPOLOGY", n, 1); }
  ~FakeTopo() { unsetenv("NUP_FAKE_TOPOLOGY"); }
};

// ---- cpulist parsing ---------------------------------------------------

TEST(Topology, ParseCpulistSinglesAndRanges) {
  EXPECT_EQ(Topology::parse_cpulist("0-3"),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(Topology::parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(Topology::parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(Topology::parse_cpulist(" 0 , 2-3 \n"),
            (std::vector<int>{0, 2, 3}));
}

TEST(Topology, ParseCpulistRejectsGarbage) {
  EXPECT_TRUE(Topology::parse_cpulist("").empty());
  EXPECT_TRUE(Topology::parse_cpulist("banana").empty());
  EXPECT_TRUE(Topology::parse_cpulist("3-1").empty());  // inverted range
}

// ---- discovery ---------------------------------------------------------

TEST(Topology, SingleNodeHoldsEveryCpu) {
  const Topology topo = Topology::single_node();
  ASSERT_EQ(topo.node_count(), 1u);
  EXPECT_FALSE(topo.faked());
  EXPECT_GE(topo.node(0).cpus.size(), 1u);
  EXPECT_EQ(topo.cpu_count(), topo.node(0).cpus.size());
}

TEST(Topology, DiscoverAlwaysYieldsAtLeastOneNode) {
  const Topology topo = Topology::discover();
  ASSERT_GE(topo.node_count(), 1u);
  for (const TopologyNode& node : topo.nodes()) {
    EXPECT_FALSE(node.cpus.empty());
  }
  EXPECT_FALSE(topo.describe().empty());
}

TEST(Topology, FakeOverrideSplitsIntoNNodes) {
  for (const char* n : {"2", "4"}) {
    FakeTopo guard(n);
    const Topology topo = Topology::discover();
    EXPECT_EQ(topo.node_count(),
              static_cast<std::size_t>(std::atoi(n)));
    EXPECT_TRUE(topo.faked());
    // Every fake node owns at least one real CPU id (shared round-robin
    // when the host has fewer CPUs than fake nodes).
    for (const TopologyNode& node : topo.nodes()) {
      ASSERT_FALSE(node.cpus.empty());
      for (const int cpu : node.cpus) EXPECT_GE(cpu, 0);
    }
  }
}

TEST(Topology, FakeOverrideIsReadPerCall) {
  {
    FakeTopo guard("3");
    EXPECT_EQ(Topology::discover().node_count(), 3u);
  }
  EXPECT_FALSE(Topology::discover().faked());
}

TEST(Topology, BogusFakeValuesFallBackToRealDiscovery) {
  for (const char* n : {"0", "-2", "banana", ""}) {
    FakeTopo guard(n);
    EXPECT_FALSE(Topology::discover().faked()) << "value '" << n << "'";
  }
}

// ---- numa mode parsing -------------------------------------------------

TEST(NumaMode, ParsesTheCliValues) {
  EXPECT_EQ(numa_mode_from_string("off"), NumaMode::kOff);
  EXPECT_EQ(numa_mode_from_string("auto"), NumaMode::kAuto);
  EXPECT_EQ(numa_mode_from_string("interleave"), NumaMode::kInterleave);
  EXPECT_FALSE(numa_mode_from_string("on").has_value());
  EXPECT_FALSE(numa_mode_from_string("").has_value());
  EXPECT_STREQ(to_string(NumaMode::kAuto), "auto");
  EXPECT_STREQ(to_string(NumaMode::kOff), "off");
  EXPECT_STREQ(to_string(NumaMode::kInterleave), "interleave");
}

// ---- placement ---------------------------------------------------------

TilePlan bands(std::int64_t rows) {
  TilerOptions options;
  options.tile_shape = {rows, 0};  // row bands, lex order by construction
  return plan_tiles(stencil::jacobi_2d(), options);
}

TEST(Placement, AutoAssignsContiguousMonotoneRuns) {
  const TilePlan plan = bands(4);
  ASSERT_GE(plan.tiles.size(), 4u);
  const PlacementPlan p = plan_placement(plan, 3, NumaMode::kAuto);
  ASSERT_EQ(p.node_of.size(), plan.tiles.size());
  ASSERT_EQ(p.node_count(), 3u);
  // Lex-adjacent tiles share halo rows: runs must be contiguous, i.e. the
  // node index never decreases along the lex order.
  for (std::size_t t = 1; t < p.node_of.size(); ++t) {
    EXPECT_GE(p.node_of[t], p.node_of[t - 1]) << "tile " << t;
  }
  EXPECT_GE(p.node_of.front(), 0);
  EXPECT_LE(p.node_of.back(), 2);
}

TEST(Placement, AutoBalancesStreamedBytes) {
  const TilePlan plan = bands(2);
  const PlacementPlan p = plan_placement(plan, 2, NumaMode::kAuto);
  // Both nodes get work and the split is within 2x of perfect (row bands
  // of a uniform grid are near-equal-cost).
  EXPECT_GT(p.node_bytes[0], 0);
  EXPECT_GT(p.node_bytes[1], 0);
  EXPECT_LT(p.imbalance(), 2.0);
  // node_bytes tallies every tile exactly once.
  std::int64_t total = 0;
  for (const std::int64_t b : p.node_bytes) total += b;
  std::int64_t expected = 0;
  for (const Tile& t : plan.tiles) {
    expected += std::max<std::int64_t>(t.streamed_elements * 8, 1);
  }
  EXPECT_EQ(total, expected);
}

TEST(Placement, InterleaveRoundRobins) {
  const TilePlan plan = bands(2);
  const PlacementPlan p = plan_placement(plan, 3, NumaMode::kInterleave);
  for (std::size_t t = 0; t < p.node_of.size(); ++t) {
    EXPECT_EQ(p.node_of[t], static_cast<int>(t % 3));
  }
}

TEST(Placement, OffOrSingleNodePlacesEverythingOnNodeZero) {
  const TilePlan plan = bands(4);
  for (const PlacementPlan& p :
       {plan_placement(plan, 2, NumaMode::kOff),
        plan_placement(plan, 1, NumaMode::kAuto)}) {
    for (const int node : p.node_of) EXPECT_EQ(node, 0);
  }
}

TEST(Placement, DescribeMentionsEveryNode) {
  const TilePlan plan = bands(2);
  const PlacementPlan p = plan_placement(plan, 2, NumaMode::kAuto);
  const std::string text = p.describe();
  EXPECT_NE(text.find("node0"), std::string::npos) << text;
  EXPECT_NE(text.find("node1"), std::string::npos) << text;
}

}  // namespace
}  // namespace nup::runtime
