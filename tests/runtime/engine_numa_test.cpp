// Locality-aware scheduling in the frame engine: under a faked multi-node
// topology the per-node queues, sticky dispatch, worker pinning and idle
// stealing must never change a single output bit relative to --numa off,
// the steal path must actually run (and stitch correctly) when one node is
// deliberately overloaded, and the per-node observability series must add
// up.

#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/topology.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "testing/stencil_gen.hpp"

namespace nup::runtime {
namespace {

using ::nup::testing::random_program;

// Scoped NUP_FAKE_TOPOLOGY (discover() reads the env per call, so setting
// it before constructing an engine is enough).
struct FakeTopo {
  explicit FakeTopo(const char* n) { setenv("NUP_FAKE_TOPOLOGY", n, 1); }
  ~FakeTopo() { unsetenv("NUP_FAKE_TOPOLOGY"); }
};

FrameResult run_one(const stencil::StencilProgram& program,
                    std::uint64_t seed, NumaMode numa,
                    obs::Registry* registry = nullptr,
                    std::function<int(const Tile&, std::size_t, std::size_t)>
                        place = nullptr) {
  obs::Registry local;
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {3, 0};
  options.metrics = registry != nullptr ? registry : &local;
  options.numa = numa;
  options.place_tile = std::move(place);
  FrameEngine engine(options);
  return engine.submit(program, seed).wait();
}

TEST(EngineNuma, OffReportsOneNodeAndNeverSteals) {
  const stencil::StencilProgram p = stencil::jacobi_2d();
  obs::Registry registry;
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {3, 0};
  options.metrics = &registry;
  FrameEngine engine(options);  // numa defaults to kOff
  EXPECT_EQ(engine.topology().node_count(), 1u);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    ASSERT_TRUE(engine.submit(p, seed).wait().ok());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.nodes, 1u);
  EXPECT_EQ(stats.tiles_stolen, 0);
  // Fully local by definition: the gauge stays at 1000 permille.
  EXPECT_EQ(registry.gauge("engine.placement.local_fraction").value(),
            1000);
}

TEST(EngineNuma, AutoOnTwoFakeNodesBitIdenticalToOffAndGolden) {
  FakeTopo guard("2");
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const stencil::StencilProgram p = random_program(seed);
    const FrameResult off = run_one(p, seed, NumaMode::kOff);
    const FrameResult aut = run_one(p, seed, NumaMode::kAuto);
    ASSERT_TRUE(off.ok()) << off.error;
    ASSERT_TRUE(aut.ok()) << aut.error;
    EXPECT_EQ(aut.outputs, off.outputs) << p.name() << " seed " << seed;
    EXPECT_EQ(aut.outputs, stencil::run_golden(p, seed).outputs)
        << p.name() << " seed " << seed;
  }
}

TEST(EngineNuma, InterleaveOnFourFakeNodesBitIdenticalToGolden) {
  FakeTopo guard("4");
  for (std::uint64_t seed = 20; seed < 28; ++seed) {
    const stencil::StencilProgram p = random_program(seed);
    const FrameResult result = run_one(p, seed, NumaMode::kInterleave);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.outputs, stencil::run_golden(p, seed).outputs)
        << p.name() << " seed " << seed;
  }
}

// Saturate node 0: every tile is placed there while a worker is dedicated
// to node 1, so node 1 can only make progress by stealing. The frame must
// still stitch bit-identically -- a stolen tile runs unchanged, only on a
// different worker.
TEST(EngineNuma, StealPathRunsAndStitchesCorrectly) {
  FakeTopo guard("2");
  const stencil::StencilProgram p = stencil::jacobi_2d();
  obs::Registry registry;
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {2, 0};  // plenty of tiles to fight over
  options.metrics = &registry;
  options.numa = NumaMode::kAuto;
  options.place_tile = [](const Tile&, std::size_t, std::size_t) {
    return 0;
  };
  FrameEngine engine(options);
  ASSERT_EQ(engine.topology().node_count(), 2u);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const FrameResult result = engine.submit(p, seed).wait();
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.outputs, stencil::run_golden(p, seed).outputs)
        << "seed " << seed;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_GT(stats.tiles_stolen, 0);
  // Steals show up as node-1 remote dispatches, dragging the local
  // fraction below fully-local.
  EXPECT_GT(registry.counter("engine.node.1.steals").value(), 0);
  EXPECT_LT(registry.gauge("engine.placement.local_fraction").value(),
            1000);
}

TEST(EngineNuma, NodeSeriesAddUpToTilesExecuted) {
  FakeTopo guard("2");
  const stencil::StencilProgram p = stencil::jacobi_2d();
  obs::Registry registry;
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {3, 0};
  options.metrics = &registry;
  options.numa = NumaMode::kAuto;
  FrameEngine engine(options);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    ASSERT_TRUE(engine.submit(p, seed).wait().ok());
  }
  const EngineStats stats = engine.stats();
  const std::int64_t node_tiles =
      registry.counter("engine.node.0.tiles").value() +
      registry.counter("engine.node.1.tiles").value();
  EXPECT_EQ(node_tiles, stats.tiles_executed);
  const std::int64_t steals =
      registry.counter("engine.node.0.steals").value() +
      registry.counter("engine.node.1.steals").value();
  EXPECT_EQ(steals, stats.tiles_stolen);
  // Sticky dispatch keeps the local fraction high: the gauge is permille.
  const std::int64_t local =
      registry.gauge("engine.placement.local_fraction").value();
  EXPECT_GE(local, 0);
  EXPECT_LE(local, 1000);
  if (stats.tiles_stolen == 0) EXPECT_EQ(local, 1000);
}

TEST(EngineNuma, PlacementForExposesTheComputedPlan) {
  FakeTopo guard("2");
  EngineOptions options;
  options.threads = 2;
  options.tile_shape = {3, 0};
  options.numa = NumaMode::kAuto;
  FrameEngine engine(options);
  const auto plan = engine.plan_for(stencil::jacobi_2d());
  const auto placement = engine.placement_for(plan);
  ASSERT_NE(placement, nullptr);
  EXPECT_EQ(placement->node_of.size(), plan->tiles.size());
  EXPECT_EQ(placement->node_count(), 2u);
  // Off engines have no placement to expose.
  EngineOptions off = options;
  off.numa = NumaMode::kOff;
  FrameEngine off_engine(off);
  EXPECT_EQ(off_engine.placement_for(off_engine.plan_for(
                stencil::jacobi_2d())),
            nullptr);
}

}  // namespace
}  // namespace nup::runtime
