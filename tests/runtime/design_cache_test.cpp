// The design cache memoizes the compiled microarchitecture and the fast
// backend's row programs keyed by a *canonicalized* stencil program:
// naming is excluded, reference order and build options are included.
// Entries must stay usable after eviction (shared ownership) and the cache
// must be safe to hammer from many threads.

#include "runtime/design_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/fast.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"

namespace nup::runtime {
namespace {

TEST(DesignCache, MissThenHitReturnsSameEntry) {
  DesignCache cache(8);
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);

  const auto first = cache.get_or_compile(p);
  const auto second = cache.get_or_compile(p);
  EXPECT_EQ(first.get(), second.get());

  const DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(DesignCache, CanonicalizationIgnoresNames) {
  stencil::StencilProgram a("LEFT", poly::Domain::box({1, 1}, {10, 14}));
  a.add_input("A", {{-1, 0}, {0, 0}, {1, 0}});
  a.set_output("B");
  stencil::StencilProgram b("RIGHT", poly::Domain::box({1, 1}, {10, 14}));
  b.add_input("IMG", {{-1, 0}, {0, 0}, {1, 0}});
  b.set_output("OUT");

  EXPECT_EQ(DesignCache::canonical_key(a), DesignCache::canonical_key(b));
  EXPECT_EQ(DesignCache::fingerprint(a), DesignCache::fingerprint(b));

  DesignCache cache(8);
  cache.get_or_compile(a);
  cache.get_or_compile(b);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(DesignCache, KeyDistinguishesWindowDomainOrderAndOptions) {
  const stencil::StencilProgram base = stencil::denoise_2d(24, 32);

  // Different window.
  const stencil::StencilProgram other_window = stencil::rician_2d(24, 32);
  EXPECT_NE(DesignCache::canonical_key(base),
            DesignCache::canonical_key(other_window));

  // Different domain.
  const stencil::StencilProgram other_domain = stencil::denoise_2d(24, 33);
  EXPECT_NE(DesignCache::canonical_key(base),
            DesignCache::canonical_key(other_domain));

  // Different reference order: fixes the kernel argument order, so it is
  // part of the identity.
  stencil::StencilProgram ab("AB", poly::Domain::box({1, 1}, {10, 14}));
  ab.add_input("A", {{0, -1}, {0, 1}});
  stencil::StencilProgram ba("BA", poly::Domain::box({1, 1}, {10, 14}));
  ba.add_input("A", {{0, 1}, {0, -1}});
  EXPECT_NE(DesignCache::canonical_key(ab), DesignCache::canonical_key(ba));

  // Different build options.
  arch::BuildOptions exact;
  exact.exact_sizing = true;
  exact.exact_streaming = true;
  EXPECT_NE(DesignCache::canonical_key(base),
            DesignCache::canonical_key(base, exact));
}

TEST(DesignCache, DatapathWidthNeverAliases) {
  // Regression: before datapath_width joined the canonical key, a W=8
  // lookup could hand back the W=1 microarchitecture (wrong word depths,
  // wrong padded buffer bytes) compiled moments earlier.
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  arch::BuildOptions w1;
  arch::BuildOptions w8;
  w8.datapath_width = 8;
  EXPECT_NE(DesignCache::canonical_key(p, w1),
            DesignCache::canonical_key(p, w8));

  DesignCache cache(8);
  const auto scalar = cache.get_or_compile(p, w1);
  const auto wide = cache.get_or_compile(p, w8);
  EXPECT_NE(scalar.get(), wide.get());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(scalar->design.datapath_width, 1);
  EXPECT_EQ(wide->design.datapath_width, 8);

  // Each width hits its own entry on re-lookup.
  EXPECT_EQ(cache.get_or_compile(p, w1).get(), scalar.get());
  EXPECT_EQ(cache.get_or_compile(p, w8).get(), wide.get());
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST(DesignCache, LruEvictsLeastRecentlyUsed) {
  DesignCache cache(2);
  const stencil::StencilProgram a = stencil::denoise_2d(10, 12);
  const stencil::StencilProgram b = stencil::rician_2d(10, 12);
  const stencil::StencilProgram c = stencil::sobel_2d(10, 12);

  const auto ea = cache.get_or_compile(a);
  cache.get_or_compile(b);
  cache.get_or_compile(a);  // a is now most recent; b is the LRU victim
  cache.get_or_compile(c);  // evicts b

  DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2u);

  cache.get_or_compile(a);  // still resident
  EXPECT_EQ(cache.stats().hits, 2);
  cache.get_or_compile(b);  // was evicted: recompiles
  EXPECT_EQ(cache.stats().misses, 4);

  // The evicted-then-recompiled entry is a distinct object, but the old
  // shared_ptr keeps the first compilation alive and usable.
  EXPECT_EQ(ea->design.systems.size(), 1u);
}

TEST(DesignCache, StatsStayConsistentAcrossEviction) {
  // Capacity 2, three programs: the snapshot invariants hits + misses ==
  // lookups and inserts - evictions == entries must hold at every
  // observation point.
  obs::Registry registry;
  DesignCache cache(2, &registry);
  const stencil::StencilProgram a = stencil::denoise_2d(10, 12);
  const stencil::StencilProgram b = stencil::rician_2d(10, 12);
  const stencil::StencilProgram c = stencil::sobel_2d(10, 12);

  cache.get_or_compile(a);
  cache.get_or_compile(b);
  cache.get_or_compile(a);  // hit
  cache.get_or_compile(c);  // evicts b

  const DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.inserts, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.inserts - stats.evictions,
            static_cast<std::int64_t>(stats.entries));

  // The registry mirrors the struct, and every miss left one
  // compile-latency observation.
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("cache.hits"), stats.hits);
  EXPECT_EQ(snap.value_of("cache.misses"), stats.misses);
  EXPECT_EQ(snap.value_of("cache.inserts"), stats.inserts);
  EXPECT_EQ(snap.value_of("cache.evictions"), stats.evictions);
  EXPECT_EQ(registry.histogram("cache.compile_us").snapshot().count,
            stats.inserts);
}

TEST(DesignCache, CachedPlanSimulatesBitIdenticalToGolden) {
  DesignCache cache(4);
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const auto entry = cache.get_or_compile(p);

  sim::SimOptions options;
  options.seed = 11;
  sim::FastSim sim(p, entry->design, entry->plan, options);
  const sim::SimResult result = sim.run();

  const stencil::GoldenRun golden = stencil::run_golden(p, 11);
  ASSERT_FALSE(result.deadlocked);
  EXPECT_EQ(result.outputs, golden.outputs);
}

TEST(DesignCache, ConcurrentGetOrCompileIsConsistent) {
  DesignCache cache(8);
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(12, 14), stencil::rician_2d(12, 14),
      stencil::sobel_2d(12, 14)};

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const auto entry =
            cache.get_or_compile(programs[(t + round) % programs.size()]);
        if (!entry || entry->design.systems.empty()) ++failures[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (const int f : failures) EXPECT_EQ(f, 0);
  const DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds);
  EXPECT_EQ(stats.entries, programs.size());
  EXPECT_GE(stats.hits, kThreads * kRounds - 3);
}

TEST(DesignCache, PinnedEntrySurvivesLruChurn) {
  DesignCache cache(2);
  const stencil::StencilProgram keep = stencil::denoise_2d(10, 12);
  const stencil::StencilProgram b = stencil::rician_2d(10, 12);
  const stencil::StencilProgram c = stencil::sobel_2d(10, 12);

  const auto pinned = cache.pin(keep);
  cache.get_or_compile(b);
  cache.get_or_compile(c);  // keep is the LRU entry, but pinned: b evicts

  DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.pinned, 1u);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_GE(stats.eviction_skips, 1);  // the sweep stepped over keep
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.get_or_compile(keep);  // still resident despite being LRU
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.get_or_compile(keep).get(), pinned.get());

  // Unpinning returns the entry to normal LRU life.
  cache.unpin(keep);
  EXPECT_EQ(cache.stats().pinned, 0u);
  cache.get_or_compile(b);  // recompiles; now keep is LRU and evictable
  cache.get_or_compile(c);
  cache.get_or_compile(keep);
  EXPECT_EQ(cache.stats().misses, 6) << "keep was not evicted after unpin";
}

TEST(DesignCache, AllPinnedGrowsPastCapacityInsteadOfEvicting) {
  DesignCache cache(2);
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(10, 12), stencil::rician_2d(10, 12),
      stencil::sobel_2d(10, 12)};
  for (const stencil::StencilProgram& p : programs) cache.pin(p);

  const DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);  // over capacity, nothing evicted
  EXPECT_EQ(stats.pinned, 3u);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_GE(stats.eviction_skips, 1);

  // Pins nest: one unpin is not enough to make an entry evictable.
  cache.pin(programs[0]);
  cache.unpin(programs[0]);
  EXPECT_EQ(cache.stats().pinned, 3u);
}

TEST(DesignCache, PinCountersTrackNestingAndRegistry) {
  obs::Registry registry;
  DesignCache cache(4, &registry);
  const stencil::StencilProgram p = stencil::denoise_2d(10, 12);

  // Nested pins each count; the entry is "pinned" once regardless.
  cache.pin(p);
  cache.pin(p);
  DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.pins, 2);
  EXPECT_EQ(stats.unpins, 0);
  EXPECT_EQ(stats.pinned, 1u);

  // The first unpin drops one nesting level, not the pin itself.
  cache.unpin(p);
  stats = cache.stats();
  EXPECT_EQ(stats.unpins, 1);
  EXPECT_EQ(stats.pinned, 1u);

  cache.unpin(p);
  stats = cache.stats();
  EXPECT_EQ(stats.unpins, 2);
  EXPECT_EQ(stats.pinned, 0u);

  // Unpinning an unpinned (or absent) entry is a no-op: the counter only
  // moves when a pin is actually dropped, so pins == unpins remains the
  // leak-free invariant.
  cache.unpin(p);
  cache.unpin(stencil::rician_2d(10, 12));  // never inserted
  stats = cache.stats();
  EXPECT_EQ(stats.unpins, 2);
  EXPECT_EQ(stats.pins, stats.unpins);

  // The registry mirrors the struct (the serving layer's /metrics view).
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("cache.pins"), stats.pins);
  EXPECT_EQ(snap.value_of("cache.unpins"), stats.unpins);
  EXPECT_EQ(snap.value_of("cache.pinned"), 0);
  EXPECT_EQ(snap.value_of("cache.entries"),
            static_cast<std::int64_t>(stats.entries));
}

TEST(DesignCache, PinVersusLruHammer) {
  // Many threads churn a tiny cache while one set of entries stays
  // pinned: the pinned designs must remain the same objects throughout,
  // and stats must stay coherent.
  DesignCache cache(2);
  const stencil::StencilProgram keep = stencil::denoise_2d(10, 12);
  const auto pinned = cache.pin(keep);

  const std::vector<stencil::StencilProgram> churn = {
      stencil::rician_2d(10, 12), stencil::sobel_2d(10, 12),
      stencil::bicubic_2d(8, 16), stencil::jacobi_2d(10, 12)};

  constexpr int kThreads = 4;
  constexpr int kRounds = 20;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        cache.get_or_compile(churn[(t + round) % churn.size()]);
        if (cache.get_or_compile(keep).get() != pinned.get()) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (const int f : failures) EXPECT_EQ(f, 0);
  const DesignCacheStats stats = cache.stats();
  EXPECT_EQ(stats.pinned, 1u);
  // (eviction_skips depends on where keep sits in the LRU order when
  // sweeps run; the deterministic skip assertions live above.)
  EXPECT_EQ(stats.inserts - stats.evictions,
            static_cast<std::int64_t>(stats.entries));
}

}  // namespace
}  // namespace nup::runtime
