// Halo tiler correctness: tiles partition the iteration domain exactly
// (every output rank appears once), input hulls equal the tile box grown by
// the window offsets, and executing the tiles independently then stitching
// by rank reproduces stencil::run_golden bit for bit -- including sheared
// and triangular domains and degenerate tiles smaller than the window.

#include "runtime/tiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/builder.hpp"
#include "sim/fast.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::runtime {
namespace {

// Runs every tile on the compiled fast backend (sequentially) and stitches
// the outputs into a full frame via the precomputed ranks.
std::vector<double> run_tiled(const TilePlan& plan, std::uint64_t seed) {
  std::vector<double> frame(static_cast<std::size_t>(plan.total_outputs),
                            0.0);
  for (const Tile& tile : plan.tiles) {
    const arch::AcceleratorDesign design = arch::build_design(*tile.program);
    sim::SimOptions options;
    options.seed = seed;
    options.record_outputs = false;
    sim::FastSim sim(*tile.program, design, options);
    std::size_t k = 0;
    sim.set_output_callback([&](const poly::IntVec&, double value) {
      frame[static_cast<std::size_t>(tile.output_ranks[k++])] = value;
    });
    const sim::SimResult result = sim.run();
    EXPECT_FALSE(result.deadlocked) << result.deadlock_detail;
    EXPECT_EQ(result.kernel_fires, tile.outputs());
    EXPECT_EQ(static_cast<std::int64_t>(k), tile.outputs());
  }
  return frame;
}

void expect_ranks_partition(const TilePlan& plan) {
  std::vector<int> seen(static_cast<std::size_t>(plan.total_outputs), 0);
  for (const Tile& tile : plan.tiles) {
    EXPECT_EQ(tile.outputs(),
              tile.program->iteration().count());
    EXPECT_TRUE(std::is_sorted(tile.output_ranks.begin(),
                               tile.output_ranks.end()));
    for (const std::int64_t rank : tile.output_ranks) {
      ASSERT_GE(rank, 0);
      ASSERT_LT(rank, plan.total_outputs);
      ++seen[static_cast<std::size_t>(rank)];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Tiler, EmptyShapeYieldsSingleWholeTile) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const TilePlan plan = plan_tiles(p);
  ASSERT_EQ(plan.tiles.size(), 1u);
  EXPECT_EQ(plan.total_outputs, p.iteration().count());
  EXPECT_EQ(plan.streamed_elements, plan.untiled_streamed_elements);
  // Whole-domain tile: ranks are the identity.
  for (std::int64_t r = 0; r < plan.total_outputs; ++r) {
    EXPECT_EQ(plan.tiles[0].output_ranks[static_cast<std::size_t>(r)], r);
  }
}

TEST(Tiler, RanksPartitionRectangularDomain) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  TilerOptions options;
  options.tile_shape = {8, 8};
  const TilePlan plan = plan_tiles(p, options);
  EXPECT_EQ(plan.tiles.size(), 12u);
  expect_ranks_partition(plan);
}

TEST(Tiler, InputHullIsTileBoxGrownByWindow) {
  const stencil::StencilProgram p = stencil::denoise_2d(24, 32);
  TilerOptions options;
  options.tile_shape = {8, 8};
  const TilePlan plan = plan_tiles(p, options);

  // 5-point star: window growth of 1 in every direction.
  ASSERT_EQ(plan.window_lo.size(), 1u);
  EXPECT_EQ(plan.window_lo[0], (poly::IntVec{-1, -1}));
  EXPECT_EQ(plan.window_hi[0], (poly::IntVec{1, 1}));

  for (const Tile& tile : plan.tiles) {
    ASSERT_EQ(tile.input_hulls.size(), 1u);
    poly::IntVec lo, hi;
    domain_bounding_box(tile.input_hulls[0], &lo, &hi);
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(lo[d], tile.lo[d] + plan.window_lo[0][d]);
      EXPECT_EQ(hi[d], tile.hi[d] + plan.window_hi[0][d]);
    }
  }
  // The halo makes each tile stream more than its share of the frame.
  EXPECT_GT(plan.streamed_elements, plan.untiled_streamed_elements);
}

TEST(Tiler, TilingShrinksReuseFootprint) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 96);
  const TilePlan whole = plan_tiles(p);
  TilerOptions options;
  options.tile_shape = {64, 24};  // narrower rows: shorter reuse chains
  const TilePlan split = plan_tiles(p, options);
  ASSERT_FALSE(whole.tiles.empty());
  ASSERT_FALSE(split.tiles.empty());
  EXPECT_LT(split.tiles[0].reuse_footprint, whole.tiles[0].reuse_footprint);
}

TEST(Tiler, RejectsWrongShapeArity) {
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  TilerOptions options;
  options.tile_shape = {4, 4, 4};
  EXPECT_THROW(plan_tiles(p, options), Error);
}

struct StitchCase {
  const char* name;
  stencil::StencilProgram program;
  poly::IntVec tile_shape;
};

std::vector<StitchCase> stitch_cases() {
  std::vector<StitchCase> cases;
  cases.push_back({"denoise_8x8", stencil::denoise_2d(24, 32), {8, 8}});
  cases.push_back({"bicubic_narrow", stencil::bicubic_2d(12, 48), {5, 7}});
  // Sheared (parallelogram) domain: tiles near the slanted edges clip to
  // partial parallelogram slices.
  cases.push_back({"skewed_6x12", stencil::skewed_demo(24, 48), {6, 12}});
  // Triangular domain: hypotenuse tiles clip to triangles; the corner tile
  // degenerates to a single point.
  cases.push_back({"triangular_8x8", stencil::triangular_demo(32), {8, 8}});
  // Degenerate tiles smaller than the 3x3 stencil window.
  cases.push_back({"denoise_tiny_2x2", stencil::denoise_2d(10, 12), {2, 2}});
  cases.push_back(
      {"triangular_tiny_3x3", stencil::triangular_demo(14), {3, 3}});
  // 3D with tiles only in the outer dimensions.
  cases.push_back(
      {"heat3d_2x4xfull", stencil::heat_3d(6, 8, 10), {2, 4, 0}});
  return cases;
}

TEST(Tiler, StitchedTilesBitIdenticalToGolden) {
  for (StitchCase& c : stitch_cases()) {
    SCOPED_TRACE(c.name);
    TilerOptions options;
    options.tile_shape = c.tile_shape;
    const TilePlan plan = plan_tiles(c.program, options);
    EXPECT_GT(plan.tiles.size(), 1u);
    expect_ranks_partition(plan);

    const stencil::GoldenRun golden = stencil::run_golden(c.program, 7);
    const std::vector<double> frame = run_tiled(plan, 7);
    ASSERT_EQ(frame.size(), golden.outputs.size());
    EXPECT_EQ(frame, golden.outputs);  // bit-identical doubles
  }
}

TEST(Tiler, StitchedFramesTrackTheSeed) {
  stencil::StencilProgram p = stencil::skewed_demo(20, 40);
  TilerOptions options;
  options.tile_shape = {5, 10};
  const TilePlan plan = plan_tiles(p, options);
  for (const std::uint64_t seed : {1ull, 42ull, 1234567ull}) {
    const stencil::GoldenRun golden = stencil::run_golden(p, seed);
    EXPECT_EQ(run_tiled(plan, seed), golden.outputs) << "seed " << seed;
  }
}

}  // namespace
}  // namespace nup::runtime
