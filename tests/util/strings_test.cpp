#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace nup {
namespace {

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(Strings, JoinSingle) { EXPECT_EQ(join({"a"}, ", "), "a"); }

TEST(Strings, JoinMany) { EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c"); }

TEST(Strings, SplitBasic) {
  const std::vector<std::string> parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const std::vector<std::string> parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitNoSeparator) {
  const std::vector<std::string> parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimBothEnds) { EXPECT_EQ(trim("  hi \t\n"), "hi"); }

TEST(Strings, TrimAllWhitespace) { EXPECT_EQ(trim(" \t "), ""); }

TEST(Strings, TrimNothingToDo) { EXPECT_EQ(trim("x y"), "x y"); }

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("module foo", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Strings, FormatGrouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(1234567), "1,234,567");
  EXPECT_EQ(format_grouped(-12345), "-12,345");
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(-0.662), "-66.2%");
  EXPECT_EQ(format_percent(0.25, 0), "25%");
}

}  // namespace
}  // namespace nup
