#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table("Title");
  table.set_header({"name", "count"});
  table.add_row({"alpha", "3"});
  table.add_row({"b", "12345"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("Title"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  EXPECT_NE(text.find("+"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable table;
  table.set_header({"col"});
  table.add_row({"wide-header-cell"});
  table.add_row({"7"});
  const std::string text = table.to_string();
  // The numeric cell must be padded on the left.
  EXPECT_NE(text.find("              7 |"), std::string::npos);
}

TEST(TextTable, SeparatorRendered) {
  TextTable table;
  table.set_header({"x"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string text = table.to_string();
  // Header rule + separator + bottom + top = at least 4 rules.
  std::size_t rules = 0;
  for (std::size_t pos = text.find("+---"); pos != std::string::npos;
       pos = text.find("+---", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(TextTable, CellHelpers) {
  EXPECT_EQ(cell(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(cell(2.5, 1), "2.5");
}

TEST(TextTable, RowCount) {
  TextTable table;
  table.add_row({"a"});
  table.add_row({"b"});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace nup
