#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace nup {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextInRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NextInDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_in(3, 3), 3);
}

TEST(Rng, NextInCoversRange) {
  Rng rng(11);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) seen[rng.next_in(0, 3)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace nup
