// The shared loopback plumbing under obs::MetricsServer and
// serve::ServeEndpoint: ephemeral binds report their port, a failed bind
// names the port that was taken, shutdown unblocks a pending accept, and
// the line reader reassembles protocol lines regardless of how TCP
// segments them.

#include "util/socket.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

namespace nup::util {
namespace {

TEST(LoopbackListener, EphemeralBindReportsPortAndAcceptsClients) {
  LoopbackListener listener(0);
  ASSERT_TRUE(listener.ok()) << listener.error();
  EXPECT_GT(listener.port(), 0);

  std::thread client([port = listener.port()] {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(write_all(fd, "ping\n"));
    ::close(fd);
  });
  const int conn = listener.accept_client();
  ASSERT_GE(conn, 0);
  LineReader reader(conn);
  std::string line;
  ASSERT_TRUE(reader.next_line(&line));
  EXPECT_EQ(line, "ping");
  ::close(conn);
  client.join();
}

TEST(LoopbackListener, SecondBindOnTakenPortNamesThePort) {
  LoopbackListener first(0);
  ASSERT_TRUE(first.ok()) << first.error();

  LoopbackListener second(first.port());
  EXPECT_FALSE(second.ok());
  // The error message must say which port was refused, so a server that
  // cannot start says why instead of dying silently.
  EXPECT_NE(second.error().find(std::to_string(first.port())),
            std::string::npos)
      << second.error();
  EXPECT_LT(second.accept_client(), 0);  // never blocks on a dead listener
}

TEST(LoopbackListener, ShutdownUnblocksPendingAccept) {
  LoopbackListener listener(0);
  ASSERT_TRUE(listener.ok()) << listener.error();

  std::thread acceptor([&listener] {
    EXPECT_LT(listener.accept_client(), 0);  // -1 once shut down
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.shutdown();
  acceptor.join();
  listener.shutdown();  // idempotent
}

TEST(LineReader, ReassemblesLinesAcrossArbitrarySegmentation) {
  LoopbackListener listener(0);
  ASSERT_TRUE(listener.ok()) << listener.error();

  std::thread client([port = listener.port()] {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    // Three protocol lines (one with CRLF) delivered in fragments that
    // never align with line boundaries, plus a trailing unterminated
    // fragment that must be discarded at EOF.
    for (const char* chunk :
         {"HEL", "LO tenant\nSUB", "MIT k 1\r\nST", "ATS\n", "dangl"}) {
      ASSERT_TRUE(write_all(fd, chunk));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(fd);
  });

  const int conn = listener.accept_client();
  ASSERT_GE(conn, 0);
  LineReader reader(conn);
  std::vector<std::string> lines;
  std::string line;
  while (reader.next_line(&line)) lines.push_back(line);
  const std::vector<std::string> expected = {"HELLO tenant", "SUBMIT k 1",
                                             "STATS"};
  EXPECT_EQ(lines, expected);
  // EOF reached: further reads keep failing instead of blocking.
  EXPECT_FALSE(reader.next_line(&line));
  ::close(conn);
  client.join();
}

TEST(WriteAll, HandlesLargePayloadsAndDeadPeers) {
  LoopbackListener listener(0);
  ASSERT_TRUE(listener.ok()) << listener.error();

  // 1 MiB of lines: far beyond one send buffer, so write_all must loop
  // over short writes while the peer drains.
  std::string payload;
  payload.reserve(1 << 20);
  while (payload.size() < (1 << 20)) {
    payload += "0123456789abcdef0123456789abcdef\n";
  }

  std::thread client([port = listener.port(), &payload] {
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(write_all(fd, payload));
    ::close(fd);
  });
  const int conn = listener.accept_client();
  ASSERT_GE(conn, 0);
  LineReader reader(conn);
  std::size_t received = 0;
  std::string line;
  while (reader.next_line(&line)) received += line.size() + 1;
  EXPECT_EQ(received, payload.size());
  ::close(conn);
  client.join();

  // Writing into a closed connection reports failure, not a crash (the
  // process must not die of SIGPIPE).
  const int dead = connect_loopback(listener.port());
  ASSERT_GE(dead, 0);
  const int victim = listener.accept_client();
  ASSERT_GE(victim, 0);
  ::close(victim);
  bool ok = true;
  for (int i = 0; i < 64 && ok; ++i) ok = write_all(dead, payload);
  EXPECT_FALSE(ok);
  ::close(dead);
}

}  // namespace
}  // namespace nup::util
