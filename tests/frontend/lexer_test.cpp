#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::frontend {
namespace {

std::vector<TokenKind> kinds(const std::string& source) {
  std::vector<TokenKind> out;
  for (const Token& t : tokenize(source)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(Lexer, Keywords) {
  const auto tokens = tokenize("for fortune");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFor);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "fortune");
}

TEST(Lexer, IntegerAndFloatLiterals) {
  const auto tokens = tokenize("42 3.14 1e3 2.5e-2");
  EXPECT_TRUE(tokens[0].is_integer);
  EXPECT_DOUBLE_EQ(tokens[0].number, 42.0);
  EXPECT_FALSE(tokens[1].is_integer);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.14);
  EXPECT_FALSE(tokens[2].is_integer);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.025);
}

TEST(Lexer, OperatorsAndPunctuation) {
  EXPECT_EQ(kinds("( ) [ ] { } ; , = + - * / < <= > >= ++"),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBracket,
                TokenKind::kRBracket, TokenKind::kLBrace, TokenKind::kRBrace,
                TokenKind::kSemicolon, TokenKind::kComma, TokenKind::kAssign,
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kLess, TokenKind::kLessEq,
                TokenKind::kGreater, TokenKind::kGreaterEq,
                TokenKind::kPlusPlus, TokenKind::kEof}));
}

TEST(Lexer, LineComments) {
  const auto tokens = tokenize("a // comment b\nc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "c");
}

TEST(Lexer, BlockComments) {
  const auto tokens = tokenize("a /* x\ny */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(tokenize("a /* never closed"), ParseError);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(tokenize("a ? b"), ParseError);
}

TEST(Lexer, MinusIsNotDecrement) {
  const auto tokens = tokenize("i--");
  // We tokenize as two minus tokens; the parser rejects it later.
  EXPECT_EQ(tokens[1].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[2].kind, TokenKind::kMinus);
}

}  // namespace
}  // namespace nup::frontend
