#include "frontend/sema.hpp"

#include <gtest/gtest.h>

#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::frontend {
namespace {

constexpr const char* kDenoiseSmall = R"(
  for (i = 1; i <= 22; i++)
    for (j = 1; j <= 30; j++)
      B[i][j] = 0.5*A[i][j] + 0.125*(A[i-1][j] + A[i+1][j]
                                     + A[i][j-1] + A[i][j+1]);
)";

TEST(Sema, BuildsProgramWithCorrectShape) {
  const stencil::StencilProgram p = parse_stencil(kDenoiseSmall, "D");
  EXPECT_EQ(p.name(), "D");
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_EQ(p.total_references(), 5u);
  EXPECT_EQ(p.output_name(), "B");
  EXPECT_EQ(p.iteration().count(), 22 * 30);
}

TEST(Sema, DuplicateReferencesCollapse) {
  const stencil::StencilProgram p = parse_stencil(
      "for (i = 1; i < 9; i++) B[i] = A[i] * A[i] + A[i-1];", "sq");
  EXPECT_EQ(p.total_references(), 2u);
}

TEST(Sema, KernelEvaluatesOriginalExpression) {
  const stencil::StencilProgram p = parse_stencil(
      "for (i = 1; i < 9; i++) B[i] = 2*A[i] - A[i-1]/4;", "k");
  // Gathered order: A[i] (slot 0), A[i-1] (slot 1).
  EXPECT_DOUBLE_EQ(p.kernel()({3.0, 8.0}), 4.0);
}

TEST(Sema, KernelMatchesGoldenOfEquivalentGalleryProgram) {
  const stencil::StencilProgram parsed =
      parse_stencil(kDenoiseSmall, "DENOISE_PARSED");
  const stencil::StencilProgram gallery = stencil::denoise_2d(24, 32);
  const stencil::GoldenRun a = stencil::run_golden(parsed, 11);
  const stencil::GoldenRun b = stencil::run_golden(gallery, 11);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    EXPECT_NEAR(a.outputs[i], b.outputs[i], 1e-12);
  }
}

TEST(Sema, MultipleInputArrays) {
  const stencil::StencilProgram p = parse_stencil(
      "for (i = 1; i < 9; i++) C[i] = A[i] + W[i-1];", "two");
  ASSERT_EQ(p.inputs().size(), 2u);
  EXPECT_EQ(p.inputs()[0].name, "A");
  EXPECT_EQ(p.inputs()[1].name, "W");
}

TEST(Sema, ThreeDimensionalNest) {
  const stencil::StencilProgram p = parse_stencil(
      "for (i = 1; i < 7; i++) for (j = 1; j < 7; j++) "
      "for (k = 1; k < 7; k++) "
      "B[i][j][k] = A[i][j][k] + A[i-1][j][k] + A[i][j][k+1];",
      "3d");
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_EQ(p.total_references(), 3u);
}

TEST(Sema, BuiltinFunctions) {
  const stencil::StencilProgram p = parse_stencil(
      "for (i = 1; i < 9; i++) B[i] = sqrt(fabs(A[i] - A[i-1]));", "fn");
  EXPECT_DOUBLE_EQ(p.kernel()({1.0, 5.0}), 2.0);
}

TEST(Sema, RejectsReadWriteArray) {
  EXPECT_THROW(
      parse_stencil("for (i = 1; i < 9; i++) A[i] = A[i-1];", "x"),
      NotStencilError);
}

TEST(Sema, RejectsNonUnitCoefficient) {
  EXPECT_THROW(
      parse_stencil("for (i = 1; i < 9; i++) B[i] = A[2*i];", "x"),
      NotStencilError);
}

TEST(Sema, RejectsTransposedSubscripts) {
  EXPECT_THROW(parse_stencil("for (i = 1; i < 9; i++) for (j = 1; j < 9; "
                             "j++) B[i][j] = A[j][i];",
                             "x"),
               NotStencilError);
}

TEST(Sema, RejectsMissingLoopVariableInSubscript) {
  EXPECT_THROW(parse_stencil("for (i = 1; i < 9; i++) for (j = 1; j < 9; "
                             "j++) B[i][j] = A[i][3];",
                             "x"),
               NotStencilError);
}

TEST(Sema, RejectsWrongArity) {
  EXPECT_THROW(parse_stencil("for (i = 1; i < 9; i++) for (j = 1; j < 9; "
                             "j++) B[i][j] = A[i];",
                             "x"),
               NotStencilError);
}

TEST(Sema, RejectsBareLoopVariableInKernel) {
  EXPECT_THROW(
      parse_stencil("for (i = 1; i < 9; i++) B[i] = A[i] + i;", "x"),
      NotStencilError);
}

TEST(Sema, RejectsUnknownFunction) {
  EXPECT_THROW(
      parse_stencil("for (i = 1; i < 9; i++) B[i] = foo(A[i]);", "x"),
      NotStencilError);
}

TEST(Sema, RejectsWrongOutputSubscripts) {
  EXPECT_THROW(parse_stencil("for (i = 1; i < 9; i++) for (j = 1; j < 9; "
                             "j++) B[j][i] = A[i][j];",
                             "x"),
               NotStencilError);
}

TEST(Sema, RejectsEmptyLoopRange) {
  EXPECT_THROW(
      parse_stencil("for (i = 9; i < 2; i++) B[i] = A[i];", "x"),
      NotStencilError);
}

TEST(Sema, RejectsDuplicateLoopVariables) {
  EXPECT_THROW(parse_stencil("for (i = 1; i < 4; i++) for (i = 1; i < 4; "
                             "i++) B[i][i] = A[i][i];",
                             "x"),
               NotStencilError);
}

TEST(Sema, RejectsKernelWithoutInputs) {
  EXPECT_THROW(parse_stencil("for (i = 1; i < 4; i++) B[i] = 3;", "x"),
               NotStencilError);
}

TEST(Sema, NegativeOffsetsViaUnaryMinus) {
  const stencil::StencilProgram p = parse_stencil(
      "for (i = 2; i < 9; i++) B[i] = A[i + -2];", "neg");
  EXPECT_EQ(p.inputs()[0].refs[0].offset, (poly::IntVec{-2}));
}

}  // namespace
}  // namespace nup::frontend
