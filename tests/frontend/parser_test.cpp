#include "frontend/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace nup::frontend {
namespace {

constexpr const char* kDenoise = R"(
  for (i = 1; i <= 766; i++)
    for (j = 1; j <= 1022; j++)
      B[i][j] = 0.5*A[i][j] + 0.125*(A[i-1][j] + A[i+1][j]
                                     + A[i][j-1] + A[i][j+1]);
)";

TEST(Parser, ParsesLoopNest) {
  const KernelAst ast = parse_kernel(kDenoise);
  ASSERT_EQ(ast.loops.size(), 2u);
  EXPECT_EQ(ast.loops[0].var, "i");
  EXPECT_EQ(ast.loops[0].lower, 1);
  EXPECT_EQ(ast.loops[0].upper, 766);
  EXPECT_EQ(ast.loops[1].var, "j");
  EXPECT_EQ(ast.loops[1].upper, 1022);
}

TEST(Parser, StrictLessAdjustsUpperBound) {
  const KernelAst ast = parse_kernel(
      "for (i = 0; i < 10; i++) B[i] = A[i];");
  EXPECT_EQ(ast.loops[0].upper, 9);
}

TEST(Parser, OutputTarget) {
  const KernelAst ast = parse_kernel(kDenoise);
  EXPECT_EQ(ast.output_array, "B");
  ASSERT_EQ(ast.output_subscripts.size(), 2u);
  EXPECT_EQ(ast.output_subscripts[0], "i");
  EXPECT_EQ(ast.output_subscripts[1], "j");
}

TEST(Parser, BodyExpressionShape) {
  const KernelAst ast = parse_kernel(kDenoise);
  ASSERT_TRUE(ast.body);
  EXPECT_EQ(ast.body->kind, ExprKind::kBinary);
  EXPECT_EQ(ast.body->op, BinaryOp::kAdd);
}

TEST(Parser, PrecedenceMulOverAdd) {
  const KernelAst ast =
      parse_kernel("for (i = 0; i < 4; i++) B[i] = A[i] + 2 * A[i-1];");
  // Top node is +, right child is *.
  EXPECT_EQ(ast.body->op, BinaryOp::kAdd);
  EXPECT_EQ(ast.body->children[1]->kind, ExprKind::kBinary);
  EXPECT_EQ(ast.body->children[1]->op, BinaryOp::kMul);
}

TEST(Parser, UnaryMinus) {
  const KernelAst ast =
      parse_kernel("for (i = 0; i < 4; i++) B[i] = -A[i];");
  EXPECT_EQ(ast.body->kind, ExprKind::kUnary);
}

TEST(Parser, FunctionCalls) {
  const KernelAst ast = parse_kernel(
      "for (i = 1; i < 4; i++) B[i] = sqrt(A[i] * A[i] + A[i-1]);");
  EXPECT_EQ(ast.body->kind, ExprKind::kCall);
  EXPECT_EQ(ast.body->name, "sqrt");
  EXPECT_EQ(ast.body->children.size(), 1u);
}

TEST(Parser, BracedBodies) {
  const KernelAst ast = parse_kernel(
      "for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { "
      "B[i][j] = A[i][j]; } }");
  EXPECT_EQ(ast.loops.size(), 2u);
}

TEST(Parser, ConstantFoldedBounds) {
  const KernelAst ast =
      parse_kernel("for (i = 2*3; i <= 10+5; i++) B[i] = A[i];");
  EXPECT_EQ(ast.loops[0].lower, 6);
  EXPECT_EQ(ast.loops[0].upper, 15);
}

TEST(Parser, NonConstantBoundThrows) {
  EXPECT_THROW(parse_kernel("for (i = n; i < 10; i++) B[i] = A[i];"),
               ParseError);
}

TEST(Parser, NonIntegerBoundThrows) {
  EXPECT_THROW(parse_kernel("for (i = 0; i < 2.5; i++) B[i] = A[i];"),
               ParseError);
}

TEST(Parser, MismatchedLoopVariableThrows) {
  EXPECT_THROW(parse_kernel("for (i = 0; j < 10; i++) B[i] = A[i];"),
               ParseError);
  EXPECT_THROW(parse_kernel("for (i = 0; i < 10; j++) B[i] = A[i];"),
               ParseError);
}

TEST(Parser, ScalarAssignmentTargetThrows) {
  EXPECT_THROW(parse_kernel("for (i = 0; i < 4; i++) b = A[i];"),
               ParseError);
}

TEST(Parser, MissingSemicolonThrows) {
  EXPECT_THROW(parse_kernel("for (i = 0; i < 4; i++) B[i] = A[i]"),
               ParseError);
}

TEST(Parser, TrailingGarbageThrows) {
  EXPECT_THROW(parse_kernel("for (i = 0; i < 4; i++) B[i] = A[i]; extra"),
               ParseError);
}

TEST(Parser, GreaterComparisonRejected) {
  EXPECT_THROW(parse_kernel("for (i = 10; i > 0; i++) B[i] = A[i];"),
               ParseError);
}

TEST(Parser, ErrorCarriesLocation) {
  try {
    parse_kernel("for (i = 0; i < 4; i++)\n  B[i] = ;");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 1);
  }
}

}  // namespace
}  // namespace nup::frontend
