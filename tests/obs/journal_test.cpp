// Flight recorder: lock-free per-thread event rings (seqlock slots), the
// merged time-ordered snapshot, ring wrap, the run-time kill switch, and
// the post-mortem bundle dumper. The concurrent tests run under the TSan
// job: any fence mistake in the seqlock shows up there.

#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace nup::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Journal, RecordsAndSnapshotsInOrder) {
  Journal journal;
  const std::uint32_t name = journal.intern("engine");
  journal.record(JournalKind::kFrameAdmitted, 7, -1, -1, 0, 16, name);
  journal.record(JournalKind::kTileExecuted, 7, 2, 3, 120, 1, name);
  journal.record(JournalKind::kFrameCompleted, 7, -1, -1, 900, 0, name);

  const std::vector<JournalRecord> log = journal.snapshot();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].kind, JournalKind::kFrameAdmitted);
  EXPECT_EQ(log[1].kind, JournalKind::kTileExecuted);
  EXPECT_EQ(log[2].kind, JournalKind::kFrameCompleted);
  EXPECT_LE(log[0].ts_ns, log[1].ts_ns);
  EXPECT_LE(log[1].ts_ns, log[2].ts_ns);
  EXPECT_EQ(log[1].frame, 7u);
  EXPECT_EQ(log[1].stage, 2);
  EXPECT_EQ(log[1].tile, 3);
  EXPECT_EQ(log[1].a, 120);
  EXPECT_EQ(log[1].b, 1);
  EXPECT_EQ(log[1].name, "engine");
  EXPECT_EQ(journal.recorded(), 3u);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(Journal, InternIsStableAndSharedPerName) {
  Journal journal;
  const std::uint32_t a = journal.intern("pipeline");
  const std::uint32_t b = journal.intern("pipeline");
  const std::uint32_t c = journal.intern("edge.s0_s1");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, 0u);  // 0 is the reserved "no name" id
}

TEST(Journal, RingWrapKeepsTheNewestEvents) {
  Journal journal(8);  // tiny ring: wraps after 8 events per thread
  for (int i = 0; i < 100; ++i) {
    journal.record(JournalKind::kTileExecuted, 1, -1, i, i);
  }
  const std::vector<JournalRecord> log = journal.snapshot();
  ASSERT_EQ(log.size(), 8u);
  // The surviving slots are the newest eight, in order.
  for (std::size_t k = 0; k < log.size(); ++k) {
    EXPECT_EQ(log[k].tile, static_cast<std::int64_t>(92 + k));
  }
  EXPECT_EQ(journal.recorded(), 100u);
}

TEST(Journal, SnapshotLastNTruncatesFromTheFront) {
  Journal journal;
  for (int i = 0; i < 20; ++i) {
    journal.record(JournalKind::kTileExecuted, 1, -1, i);
  }
  const std::vector<JournalRecord> tail = journal.snapshot(5);
  ASSERT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.front().tile, 15);
  EXPECT_EQ(tail.back().tile, 19);
}

TEST(Journal, DisabledRecordsNothing) {
  Journal journal;
  journal.set_enabled(false);
  EXPECT_FALSE(journal.enabled());
  journal.record(JournalKind::kTileExecuted, 1);
  EXPECT_EQ(journal.snapshot().size(), 0u);
  EXPECT_EQ(journal.recorded(), 0u);
  journal.set_enabled(true);
  journal.record(JournalKind::kTileExecuted, 1);
  EXPECT_EQ(journal.snapshot().size(), 1u);
}

TEST(Journal, ConcurrentRecordersAndSnapshotters) {
  // Writers hammer their thread rings while readers snapshot: the seqlock
  // must never tear a record (kind bytes stay valid, payloads consistent)
  // and TSan must stay quiet.
  Journal journal(256);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        journal.record(JournalKind::kTileExecuted,
                       static_cast<std::uint64_t>(t + 1), t, i, i, i);
      }
    });
  }
  std::thread reader([&journal, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const JournalRecord& r : journal.snapshot()) {
        ASSERT_EQ(r.kind, JournalKind::kTileExecuted);
        ASSERT_GE(r.frame, 1u);
        ASSERT_LE(r.frame, static_cast<std::uint64_t>(kWriters));
        // Payload consistency: a and b were written equal.
        ASSERT_EQ(r.a, r.b);
      }
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(journal.recorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_GT(journal.capacity_bytes(), 0u);
}

TEST(Journal, DumpWithoutDirectoryReturnsEmpty) {
  Journal journal;
  PostmortemInfo info;
  info.reason = "frame_failed";
  EXPECT_EQ(journal.dump_postmortem(info), "");
}

TEST(Journal, PostmortemBundleNamesTheFailure) {
  Journal journal;
  const std::string dir = ::testing::TempDir() + "nup_journal_pm_basic";
  journal.set_postmortem_dir(dir);
  EXPECT_EQ(journal.postmortem_dir(), dir);

  const std::uint32_t name = journal.intern("engine");
  journal.record(JournalKind::kFrameAdmitted, 42, -1, -1, 0, 4, name);
  journal.record(JournalKind::kTileExecuted, 42, 1, 2, 55, 1, name);
  journal.record(JournalKind::kDeadlock, 42, 1, 3, 0, 0, name);

  Registry registry;
  registry.counter("engine.frames_failed").inc();

  PostmortemInfo info;
  info.reason = "deadlock";
  info.detail = "denoise: simulation wedged after 3000 idle cycles";
  info.frame = 42;
  info.stage = 1;
  info.tile = 3;
  info.design = "array A: fifos [1, 127, 1]";
  const std::string path = journal.dump_postmortem(info, &registry);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("postmortem-deadlock-"), std::string::npos);

  const std::string bundle = read_file(path);
  EXPECT_NE(bundle.find("\"reason\": \"deadlock\""), std::string::npos)
      << bundle;
  EXPECT_NE(bundle.find("simulation wedged"), std::string::npos);
  EXPECT_NE(bundle.find("\"frame\": 42"), std::string::npos);
  EXPECT_NE(bundle.find("\"stage\": 1"), std::string::npos);
  EXPECT_NE(bundle.find("\"tile\": 3"), std::string::npos);
  EXPECT_NE(bundle.find("fifos [1, 127, 1]"), std::string::npos);
  // The event log survives into the bundle, deadlock event included.
  EXPECT_NE(bundle.find("\"deadlock\""), std::string::npos);
  EXPECT_NE(bundle.find("\"tile.executed\""), std::string::npos);
  EXPECT_NE(bundle.find("engine.frames_failed"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, ViolationBundleCarriesTheFifoDepths) {
  Journal journal;
  const std::string dir = ::testing::TempDir() + "nup_journal_pm_fifo";
  journal.set_postmortem_dir(dir);
  journal.record(JournalKind::kDepthViolation, 9, -1, 0, 131, 127);

  PostmortemInfo info;
  info.reason = "depth_violation";
  info.detail = "A.0: high water 131 exceeds Eq. 2 depth 127";
  info.frame = 9;
  info.tile = 0;
  info.has_fifo = true;
  info.fifo.array = "A";
  info.fifo.fifo = 0;
  info.fifo.depth = 127;
  info.fifo.high_water = 131;
  info.fifo.word_level = false;
  const std::string path = journal.dump_postmortem(info);
  ASSERT_FALSE(path.empty());
  const std::string bundle = read_file(path);
  EXPECT_NE(bundle.find("\"array\": \"A\""), std::string::npos) << bundle;
  EXPECT_NE(bundle.find("\"depth\": 127"), std::string::npos);
  EXPECT_NE(bundle.find("\"high_water\": 131"), std::string::npos);
  EXPECT_NE(bundle.find("\"word_level\": false"), std::string::npos);
  EXPECT_NE(bundle.find("fifo.depth_violation"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, SuccessiveDumpsGetDistinctPaths) {
  Journal journal;
  const std::string dir = ::testing::TempDir() + "nup_journal_pm_seq";
  journal.set_postmortem_dir(dir);
  PostmortemInfo info;
  info.reason = "frame_cancelled";
  const std::string first = journal.dump_postmortem(info);
  const std::string second = journal.dump_postmortem(info);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_NE(first, second);
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(Journal, KindNamesRoundTrip) {
  EXPECT_STREQ(to_string(JournalKind::kFrameAdmitted), "frame.admitted");
  EXPECT_STREQ(to_string(JournalKind::kTileSkipped), "tile.skipped");
  EXPECT_STREQ(to_string(JournalKind::kDepResolved), "dep.resolved");
  EXPECT_STREQ(to_string(JournalKind::kSlabLeased), "slab.leased");
  EXPECT_STREQ(to_string(JournalKind::kPassStarted), "pass.started");
  EXPECT_STREQ(to_string(JournalKind::kDepthViolation),
               "fifo.depth_violation");
  EXPECT_STREQ(to_string(JournalKind::kDeadlock), "deadlock");
}

TEST(FrameId, AllocatorIsMonotonicAndRaceFree) {
  const std::uint64_t first = next_frame_id();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(next_frame_id());
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<std::uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_GT(all.front(), first);
}

TEST(Journal, GlobalIsOneInstance) {
  EXPECT_EQ(&Journal::global(), &Journal::global());
}

}  // namespace
}  // namespace nup::obs
