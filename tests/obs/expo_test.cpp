// Live metrics exposition: the OpenMetrics renderer (structure, labeled
// family folding, escaping, and a checked-in golden fixture), the loopback
// HTTP server behind `stencilcc --metrics-port`, and the background gauge
// sampler.

#include "obs/expo.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace nup::obs {
namespace {

// A deterministic registry exercising every rendering path: plain and
// dotted counters, a labeled per-FIFO family (element- and word-level),
// stall counters, a histogram, and a label that needs escaping.
Registry& golden_registry(Registry& registry) {
  registry.counter("cache.hits").add(12);
  registry.counter("engine.frames_completed").add(3);
  registry.gauge("engine.queue_depth").set(4);
  registry.gauge("fifo.high_water.A.0").update_max(127);
  registry.gauge("fifo.depth.A.0").update_max(127);
  registry.gauge("fifo.word_depth.A.0").update_max(32);
  registry.gauge("fifo.high_water_words.A.0").update_max(32);
  registry.gauge("fifo.high_water.we\"i\\r\nd.7").update_max(5);
  registry.counter("filter.stall_cycles.B.2").add(9);
  registry.histogram("engine.tile_latency_us").observe(3);
  registry.histogram("engine.tile_latency_us").observe(250);
  return registry;
}

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(RenderOpenmetrics, StructureAndSuffixes) {
  Registry registry;
  const std::string text =
      render_openmetrics(golden_registry(registry).snapshot());

  // Counters end in _total, gauges do not, histograms expand into
  // cumulative _bucket series plus _sum and _count.
  EXPECT_NE(text.find("cache_hits_total 12"), std::string::npos) << text;
  EXPECT_NE(text.find("engine_frames_completed_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("engine_queue_depth 4"), std::string::npos);
  EXPECT_NE(text.find("engine_tile_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("engine_tile_latency_us_sum 253"), std::string::npos);
  EXPECT_NE(text.find("engine_tile_latency_us_count 2"), std::string::npos);

  // Every family gets HELP and TYPE lines; the exposition ends in # EOF.
  EXPECT_NE(text.find("# HELP cache_hits "), std::string::npos);
  EXPECT_NE(text.find("# TYPE cache_hits counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_tile_latency_us histogram"),
            std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(RenderOpenmetrics, PerFifoFamiliesFoldIntoLabels) {
  Registry registry;
  const std::string text =
      render_openmetrics(golden_registry(registry).snapshot());
  EXPECT_NE(text.find("fifo_high_water{array=\"A\",fifo=\"0\"} 127"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fifo_depth{array=\"A\",fifo=\"0\"} 127"),
            std::string::npos);
  EXPECT_NE(text.find("fifo_word_depth{array=\"A\",fifo=\"0\"} 32"),
            std::string::npos);
  EXPECT_NE(
      text.find("fifo_high_water_words{array=\"A\",fifo=\"0\"} 32"),
      std::string::npos);
  EXPECT_NE(
      text.find("filter_stall_cycles_total{array=\"B\",fifo=\"2\"} 9"),
      std::string::npos);
  // One TYPE line per folded family, not one per sample.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE fifo_high_water gauge");
       at != std::string::npos;
       at = text.find("# TYPE fifo_high_water gauge", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(RenderOpenmetrics, LabelValuesAreEscaped) {
  Registry registry;
  const std::string text =
      render_openmetrics(golden_registry(registry).snapshot());
  // The array name `we"i\r<newline>d` must render with \", \\ and \n
  // escapes inside the label value.
  EXPECT_NE(text.find("array=\"we\\\"i\\\\r\\nd\""), std::string::npos)
      << text;
}

TEST(RenderOpenmetrics, MatchesTheCheckedInGolden) {
  Registry registry;
  const std::string got =
      render_openmetrics(golden_registry(registry).snapshot());
  const std::string path =
      std::string(NUP_TEST_FIXTURE_DIR) + "/openmetrics_golden.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "renderer drifted from the checked-in exposition; if the change "
         "is intentional, regenerate tests/obs/fixtures/"
         "openmetrics_golden.txt";
}

TEST(Registry, SnapshotOpenmetricsIsTheRenderer) {
  Registry registry;
  golden_registry(registry);
  EXPECT_EQ(registry.snapshot_openmetrics(),
            render_openmetrics(registry.snapshot()));
}

TEST(MetricsServer, ServesOpenmetricsAndJson) {
  Registry registry;
  golden_registry(registry);
  MetricsServerOptions options;
  options.port = 0;  // ephemeral
  options.registry = &registry;
  MetricsServer server(options);
  ASSERT_TRUE(server.ok()) << server.error();
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(metrics.find("cache_hits_total 12"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);

  const std::string json = http_get(server.port(), "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos) << json;
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"cache.hits\":12"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  server.stop();
  server.stop();  // idempotent
}

TEST(MetricsServer, SamplerFoldsGaugesIntoHistograms) {
  Registry registry;
  registry.gauge("engine.queue_depth").set(6);
  registry.gauge("pipeline.frames_in_flight").set(2);
  registry.gauge("engine.unrelated").set(99);
  MetricsServerOptions options;
  options.port = 0;
  options.registry = &registry;
  options.sample_period_ms = 5;
  MetricsServer server(options);
  ASSERT_TRUE(server.ok()) << server.error();

  // Wait for a few sampler ticks.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (registry.histogram("engine.queue_depth.sampled")
                 .snapshot()
                 .count == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();

  const Histogram::Snapshot depth =
      registry.histogram("engine.queue_depth.sampled").snapshot();
  ASSERT_GT(depth.count, 0);
  EXPECT_EQ(depth.min, 6);
  EXPECT_EQ(depth.max, 6);
  EXPECT_GT(
      registry.histogram("pipeline.frames_in_flight.sampled").snapshot()
          .count,
      0);
  // Only the configured suffixes are sampled.
  EXPECT_EQ(registry.histogram("engine.unrelated.sampled").snapshot().count,
            0);
}

TEST(MetricsServer, RejectsAPortInUse) {
  MetricsServerOptions options;
  options.port = 0;
  MetricsServer first(options);
  ASSERT_TRUE(first.ok()) << first.error();
  options.port = first.port();
  MetricsServer second(options);
  EXPECT_FALSE(second.ok());
  EXPECT_FALSE(second.error().empty());
}

}  // namespace
}  // namespace nup::obs
