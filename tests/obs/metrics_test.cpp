// Metrics registry: exactness under concurrent hammering (the TSan job
// runs this test), percentile math of the fixed-bucket histogram, and the
// snapshot renderings (--metrics JSON, --stats table).

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace nup::obs {
namespace {

TEST(Counter, ConcurrentAddsAreExact) {
  Registry registry;
  Counter& counter = registry.counter("hammered");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddAndMax) {
  Registry registry;
  Gauge& gauge = registry.gauge("g");
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(3);
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(4);  // lower: no effect
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(25);
  EXPECT_EQ(gauge.value(), 25);
}

TEST(Gauge, ConcurrentUpdateMaxKeepsTheMaximum) {
  Registry registry;
  Gauge& gauge = registry.gauge("high_water");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 5000; ++i) {
        gauge.update_max(t * 10000 + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.value(), (kThreads - 1) * 10000 + 4999);
}

TEST(Histogram, CountsSumMinMax) {
  Registry registry;
  Histogram& hist = registry.histogram("h");
  for (const std::int64_t v : {3, 9, 27, 81, 243}) hist.observe(v);
  const Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 3 + 9 + 27 + 81 + 243);
  EXPECT_EQ(snap.min, 3);
  EXPECT_EQ(snap.max, 243);
  EXPECT_DOUBLE_EQ(snap.mean(), snap.sum / 5.0);
}

TEST(Histogram, PercentilesAreOrderedAndClamped) {
  Registry registry;
  Histogram& hist = registry.histogram("latency");
  for (std::int64_t v = 1; v <= 1000; ++v) hist.observe(v);
  const Histogram::Snapshot snap = hist.snapshot();
  const double p50 = snap.percentile(0.50);
  const double p95 = snap.percentile(0.95);
  const double p99 = snap.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p99, snap.max);
  // Uniform 1..1000: the interpolated median lands near 500.
  EXPECT_NEAR(p50, 500.0, 150.0);
}

TEST(Histogram, OverflowBucketPercentilesSpanTheObservedRange) {
  // Every observation lands in the overflow bucket (beyond the largest
  // bound): interpolation must span the observed [min, max], not anchor
  // its low edge at the last finite bound (which would report p50 = 2010
  // here -- just past the bound -- however large the data).
  Registry registry;
  Histogram& hist = registry.histogram("overflow", {10, 20});
  for (const std::int64_t v : {1000, 2000, 4000}) hist.observe(v);
  const Histogram::Snapshot snap = hist.snapshot();
  // Linear interpolation across [1000, 4000] at rank 1.5 of 3.
  EXPECT_DOUBLE_EQ(snap.percentile(0.50), 2500.0);
  EXPECT_DOUBLE_EQ(snap.percentile(1.0), 4000.0);
  EXPECT_LE(snap.percentile(0.99), 4000.0);
  EXPECT_GE(snap.percentile(0.01), 1000.0);
}

TEST(Histogram, PercentileOfASingleObservationIsThatValue) {
  // One value inside an interior bucket: the span collapses to the
  // observation, wherever the bucket edges sit.
  Registry registry;
  Histogram& hist = registry.histogram("single");
  hist.observe(123456789);
  const Histogram::Snapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.percentile(0.50), 123456789.0);
  EXPECT_DOUBLE_EQ(snap.percentile(0.99), 123456789.0);
}

TEST(Histogram, ConcurrentObserveCountsEveryValue) {
  Registry registry;
  Histogram& hist = registry.histogram("c");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) hist.observe(t * 100 + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.snapshot().count, kThreads * kPerThread);
}

TEST(Registry, SameNameSameMetric) {
  Registry registry;
  EXPECT_EQ(&registry.counter("x"), &registry.counter("x"));
  EXPECT_EQ(&registry.gauge("x"), &registry.gauge("x"));
  EXPECT_EQ(&registry.histogram("x"), &registry.histogram("x"));
  EXPECT_NE(static_cast<void*>(&registry.counter("a")),
            static_cast<void*>(&registry.counter("b")));
}

TEST(Registry, ResetZeroesInPlace) {
  Registry registry;
  Counter& counter = registry.counter("n");
  Gauge& gauge = registry.gauge("g");
  Histogram& hist = registry.histogram("h");
  counter.add(5);
  gauge.set(9);
  hist.observe(42);
  registry.reset();
  // Cached references stay valid and read zero.
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(hist.snapshot().count, 0);
  counter.inc();
  EXPECT_EQ(registry.counter("n").value(), 1);
}

TEST(Registry, SnapshotJsonAndTable) {
  Registry registry;
  registry.counter("cache.hits").add(12);
  registry.gauge("fifo.high_water.A.0").update_max(127);
  registry.histogram("tile_us").observe(100);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value_of("cache.hits"), 12);
  EXPECT_EQ(snap.value_of("fifo.high_water.A.0"), 127);
  EXPECT_EQ(snap.value_of("absent", -1), -1);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"cache.hits\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fifo.high_water.A.0\":127"), std::string::npos);
  EXPECT_NE(json.find("\"tile_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  const std::string table = snap.to_table();
  EXPECT_NE(table.find("cache.hits"), std::string::npos) << table;
  EXPECT_NE(table.find("fifo.high_water.A.0"), std::string::npos);
}

TEST(Registry, GlobalIsOneInstance) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(Registry, ConcurrentLookupAndUpdate) {
  // Racing name resolution against updates and snapshots: the TSan job
  // turns any locking mistake here into a failure.
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 2000; ++i) {
        registry.counter("shared").inc();
        registry.counter("mine." + std::to_string(t)).inc();
        registry.gauge("depth").update_max(i);
        registry.histogram("lat").observe(i);
        if (i % 512 == 0) registry.snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared").value(), kThreads * 2000);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("mine." + std::to_string(t)).value(), 2000);
  }
}

}  // namespace
}  // namespace nup::obs
