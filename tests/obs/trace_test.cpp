// Span tracer: disabled-by-default inertness, multi-threaded recording,
// and the Chrome trace_event JSON export consumed by chrome://tracing.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace nup::obs {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  tracer.complete("a", "t", 0, 100);
  tracer.instant("b", "t");
  tracer.counter("c", 1);
  { Span span(tracer, "d"); }
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_NE(tracer.to_chrome_json().find("\"traceEvents\""),
            std::string::npos);
}

TEST(Tracer, SpansFromManyThreadsAllExport) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      tracer.set_thread_name("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansEach; ++i) {
        Span span(tracer, "tile", "engine");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads * kSpansEach));

  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"tile\""), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Count complete events: one per span.
  std::size_t spans = 0;
  for (std::size_t at = json.find("\"ph\":\"X\"");
       at != std::string::npos; at = json.find("\"ph\":\"X\"", at + 1)) {
    ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads * kSpansEach));
}

TEST(Tracer, InstantCounterAndArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.instant("frame.completed", "engine");
  tracer.counter("engine.queue_depth", 17);
  tracer.complete("tile", "engine", 1000, 5000, "{\"tile\":3}");
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("17"), std::string::npos);
  EXPECT_NE(json.find("\"tile\":3"), std::string::npos);
}

TEST(Tracer, SpanEndIsIdempotent) {
  Tracer tracer;
  tracer.set_enabled(true);
  Span span(tracer, "once");
  span.end();
  span.end();  // second end and the destructor add nothing
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, SpanCapturesEnabledAtConstruction) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span(tracer, "a");
    tracer.set_enabled(false);  // span was live at construction: records
  }
  EXPECT_EQ(tracer.event_count(), 1u);
  {
    Span span(tracer, "b");  // constructed disabled: inert
    tracer.set_enabled(true);
  }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, ClearDropsEventsKeepsThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_thread_name("main-thread");
  tracer.instant("x", "t");
  ASSERT_EQ(tracer.event_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_NE(tracer.to_chrome_json().find("main-thread"),
            std::string::npos);
}

TEST(Tracer, TimestampsAreMicrosecondsFromEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("t", "c", 1500, 4500);  // ns -> 1.5 us, dur 3 us
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos) << json;
}

TEST(Tracer, AsyncEventsCarryTheirId) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.async_begin("frame", "engine", 42, "{\"seed\":7}");
  tracer.async_end("frame", "engine", 42);
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"42\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":7"), std::string::npos);
}

TEST(Tracer, FlowEventsBindBackwards) {
  // One frame's causal lane: start, a step per tile, and an end whose
  // binding point is "enclosing slice end" so Perfetto attaches the last
  // arrow to the slice it was emitted from.
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.flow_start("frame", "pipeline", 9);
  tracer.flow_step("frame", "pipeline", 9);
  tracer.flow_end("frame", "pipeline", 9);
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"9\""), std::string::npos);
  // Only the flow end carries the binding point.
  const std::size_t at = json.find("\"ph\":\"f\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\"", at), std::string::npos);
  std::size_t bp_count = 0;
  for (std::size_t p = json.find("\"bp\":\"e\""); p != std::string::npos;
       p = json.find("\"bp\":\"e\"", p + 1)) {
    ++bp_count;
  }
  EXPECT_EQ(bp_count, 1u);
}

TEST(Tracer, FlowAndAsyncDisabledAreInert) {
  Tracer tracer;
  tracer.async_begin("a", "c", 1);
  tracer.async_end("a", "c", 1);
  tracer.flow_start("f", "c", 2);
  tracer.flow_step("f", "c", 2);
  tracer.flow_end("f", "c", 2);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Tracer, ConcurrentRecordExportAndClear) {
  // Workers emit spans and flow events while another thread exports and
  // clears: the TSan job fails this test on any locking mistake.
  Tracer tracer;
  tracer.set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 2000; ++i) {
        Span span(tracer, "tile", "engine");
        tracer.flow_step("frame", "engine",
                         static_cast<std::uint64_t>(t * 2000 + i));
      }
    });
  }
  std::thread exporter([&tracer, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = tracer.to_chrome_json();
      ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
      tracer.clear();
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();
}

}  // namespace
}  // namespace nup::obs
