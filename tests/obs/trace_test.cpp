// Span tracer: disabled-by-default inertness, multi-threaded recording,
// and the Chrome trace_event JSON export consumed by chrome://tracing.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace nup::obs {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  tracer.complete("a", "t", 0, 100);
  tracer.instant("b", "t");
  tracer.counter("c", 1);
  { Span span(tracer, "d"); }
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_NE(tracer.to_chrome_json().find("\"traceEvents\""),
            std::string::npos);
}

TEST(Tracer, SpansFromManyThreadsAllExport) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      tracer.set_thread_name("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansEach; ++i) {
        Span span(tracer, "tile", "engine");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads * kSpansEach));

  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"tile\""), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Count complete events: one per span.
  std::size_t spans = 0;
  for (std::size_t at = json.find("\"ph\":\"X\"");
       at != std::string::npos; at = json.find("\"ph\":\"X\"", at + 1)) {
    ++spans;
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads * kSpansEach));
}

TEST(Tracer, InstantCounterAndArgs) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.instant("frame.completed", "engine");
  tracer.counter("engine.queue_depth", 17);
  tracer.complete("tile", "engine", 1000, 5000, "{\"tile\":3}");
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("17"), std::string::npos);
  EXPECT_NE(json.find("\"tile\":3"), std::string::npos);
}

TEST(Tracer, SpanEndIsIdempotent) {
  Tracer tracer;
  tracer.set_enabled(true);
  Span span(tracer, "once");
  span.end();
  span.end();  // second end and the destructor add nothing
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, SpanCapturesEnabledAtConstruction) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span(tracer, "a");
    tracer.set_enabled(false);  // span was live at construction: records
  }
  EXPECT_EQ(tracer.event_count(), 1u);
  {
    Span span(tracer, "b");  // constructed disabled: inert
    tracer.set_enabled(true);
  }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, ClearDropsEventsKeepsThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_thread_name("main-thread");
  tracer.instant("x", "t");
  ASSERT_EQ(tracer.event_count(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_NE(tracer.to_chrome_json().find("main-thread"),
            std::string::npos);
}

TEST(Tracer, TimestampsAreMicrosecondsFromEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("t", "c", 1500, 4500);  // ns -> 1.5 us, dur 3 us
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos) << json;
}

}  // namespace
}  // namespace nup::obs
